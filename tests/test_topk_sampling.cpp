// Functional tests of top-k, top-p (nucleus) sampling and weighted sampling.
#include <gtest/gtest.h>

#include "kernels/reference.hpp"
#include "kernels/sampling.hpp"
#include "kernels/topk.hpp"
#include "test_helpers.hpp"

namespace ascend::kernels {
namespace {

using acc::Device;

std::vector<half> probs_workload(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return rng.token_probs_f16(n);
}

class TopK : public ::testing::TestWithParam<
                 std::tuple<std::size_t, std::size_t>> {};

TEST_P(TopK, MatchesStableDescendingPrefix) {
  const auto [n, k] = GetParam();
  if (k > n) GTEST_SKIP();
  Device dev;
  Rng rng(n + k);
  auto host = rng.uniform_f16(n, -50.0, 50.0);
  auto x = dev.upload(host);
  auto vals = dev.alloc<half>(k);
  auto idx = dev.alloc<std::int32_t>(k);
  topk_f16(dev, x.tensor(), vals.tensor(), idx.tensor(), n, k, {});
  const auto want = ref::topk(std::span<const half>(host), k);
  for (std::size_t i = 0; i < k; ++i) {
    ASSERT_EQ(vals[i].bits(), want.values[i].bits()) << "value @" << i;
    ASSERT_EQ(idx[i], want.indices[i]) << "index @" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TopK,
    ::testing::Combine(::testing::Values<std::size_t>(1, 100, 20000, 100000),
                       ::testing::Values<std::size_t>(1, 5, 64, 4096)),
    [](const auto& ti) {
      return "n" + std::to_string(std::get<0>(ti.param)) + "_k" +
             std::to_string(std::get<1>(ti.param));
    });

TEST(TopK, DuplicateHeavyInput) {
  const std::size_t n = 30000, k = 100;
  Device dev;
  Rng rng(5);
  std::vector<half> host(n);
  for (auto& v : host) {
    v = half(static_cast<float>(rng.next_below(4)));  // only 4 distinct keys
  }
  auto x = dev.upload(host);
  auto vals = dev.alloc<half>(k);
  auto idx = dev.alloc<std::int32_t>(k);
  topk_f16(dev, x.tensor(), vals.tensor(), idx.tensor(), n, k, {});
  const auto want = ref::topk(std::span<const half>(host), k);
  for (std::size_t i = 0; i < k; ++i) {
    ASSERT_EQ(vals[i].bits(), want.values[i].bits()) << i;
    ASSERT_EQ(idx[i], want.indices[i]) << i;
  }
}

TEST(TopK, BaselineAgreesWithQuickselect) {
  const std::size_t n = 50000, k = 257;
  Device dev;
  Rng rng(8);
  auto host = rng.uniform_f16(n, 0.0, 1.0);
  auto x = dev.upload(host);
  auto v1 = dev.alloc<half>(k);
  auto i1 = dev.alloc<std::int32_t>(k);
  auto v2 = dev.alloc<half>(k);
  auto i2 = dev.alloc<std::int32_t>(k);
  topk_f16(dev, x.tensor(), v1.tensor(), i1.tensor(), n, k, {});
  topk_baseline_f16(dev, x.tensor(), v2.tensor(), i2.tensor(), n, k);
  for (std::size_t i = 0; i < k; ++i) {
    ASSERT_EQ(v1[i].bits(), v2[i].bits()) << i;
    ASSERT_EQ(i1[i], i2[i]) << i;
  }
}

TEST(TopK, RejectsBadK) {
  Device dev;
  auto x = dev.alloc<half>(10, half(0.0f));
  auto v = dev.alloc<half>(10);
  auto i = dev.alloc<std::int32_t>(10);
  EXPECT_THROW(topk_f16(dev, x.tensor(), v.tensor(), i.tensor(), 10, 0, {}),
               Error);
  EXPECT_THROW(topk_f16(dev, x.tensor(), v.tensor(), i.tensor(), 10, 11, {}),
               Error);
}

// ---------------------------------------------------------------------------
// Top-p sampling

TEST(TopP, GreedyDrawReturnsArgmax) {
  // u = 0 always selects the most probable token.
  const std::size_t n = 8192;
  Device dev;
  auto host = probs_workload(n, 3);
  auto probs = dev.upload(host);
  const auto r = top_p_sample(dev, probs.tensor(), n, 0.9, 0.0);
  std::size_t argmax = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (float(host[i]) > float(host[argmax])) argmax = i;
  }
  EXPECT_EQ(r.token, static_cast<std::int32_t>(argmax));
  EXPECT_GE(r.nucleus, 1u);
}

TEST(TopP, TokenAlwaysInsideNucleus) {
  const std::size_t n = 4096;
  Device dev;
  auto host = probs_workload(n, 11);
  auto probs = dev.upload(host);
  const auto sorted = ref::stable_sort(std::span<const half>(host), true);
  for (double u : {0.05, 0.3, 0.62, 0.93}) {
    const auto r = top_p_sample(dev, probs.tensor(), n, 0.8, u);
    ASSERT_GE(r.token, 0);
    // The token must be one of the `nucleus` most probable tokens.
    bool found = false;
    for (std::size_t i = 0; i < r.nucleus; ++i) {
      if (sorted.indices[i] == r.token) found = true;
    }
    EXPECT_TRUE(found) << "u=" << u << " token=" << r.token
                       << " nucleus=" << r.nucleus;
  }
}

TEST(TopP, SmallPShrinksNucleus) {
  const std::size_t n = 4096;
  Device dev;
  auto host = probs_workload(n, 7);
  auto probs = dev.upload(host);
  const auto tight = top_p_sample(dev, probs.tensor(), n, 0.1, 0.5);
  const auto loose = top_p_sample(dev, probs.tensor(), n, 0.999, 0.5);
  EXPECT_LT(tight.nucleus, loose.nucleus);
}

TEST(TopP, MatchesReferenceOnExactDistribution) {
  // Probabilities chosen so every intermediate value is fp16/fp32 exact;
  // the device pipeline must reproduce the reference token exactly.
  std::vector<half> host = {half(0.5f),    half(0.25f),  half(0.125f),
                            half(0.0625f), half(0.0313f)};
  Device dev;
  auto probs = dev.upload(host);
  for (double u : {0.0, 0.2, 0.4, 0.6, 0.8, 0.99}) {
    for (double p : {0.6, 0.85, 1.0}) {
      const auto r = top_p_sample(dev, probs.tensor(), host.size(), p, u);
      const auto want =
          ref::top_p_sample(std::span<const half>(host), p, u);
      EXPECT_EQ(r.token, want) << "p=" << p << " u=" << u;
    }
  }
}

TEST(TopP, BaselinePipelineSamplesSameGreedyToken) {
  const std::size_t n = 2048;
  Device dev;
  auto host = probs_workload(n, 13);
  auto probs = dev.upload(host);
  const auto fast = top_p_sample(dev, probs.tensor(), n, 0.9, 0.0, {});
  const auto slow = top_p_sample(dev, probs.tensor(), n, 0.9, 0.0,
                                 {.use_baseline_ops = true});
  EXPECT_EQ(fast.token, slow.token);
  // At this small vocabulary the baseline can win (radix pays ~50 kernel
  // launches); Fig. 13's separation appears at larger lengths:
  const std::size_t big = 1 << 18;
  auto big_host = probs_workload(big, 14);
  auto big_probs = dev.upload(big_host);
  const auto fast_big = top_p_sample(dev, big_probs.tensor(), big, 0.9, 0.0);
  const auto slow_big = top_p_sample(dev, big_probs.tensor(), big, 0.9, 0.0,
                                     {.use_baseline_ops = true});
  EXPECT_EQ(fast_big.token, slow_big.token);
  EXPECT_GT(slow_big.report.time_s, fast_big.report.time_s);
}

// ---------------------------------------------------------------------------
// Weighted sampling

TEST(WeightedSample, MatchesReferenceInverseTransform) {
  const std::size_t n = 50000;
  Device dev;
  Rng rng(21);
  auto host = rng.uniform_f16(n, 0.0, 1.0);
  auto w = dev.upload(host);
  for (double u : {0.0, 0.1, 0.5, 0.777, 0.999}) {
    const auto r = weighted_sample(dev, w.tensor(), n, u);
    // The device accumulates in fp32; the reference in double. Allow the
    // boundary to shift by a few positions, but the CDF constraint must
    // hold: cum[idx-1] <= theta < cum[idx] within fp32 slack.
    ASSERT_GE(r.index, 0);
    ASSERT_LT(static_cast<std::size_t>(r.index), n);
    double total = 0.0;
    for (auto v : host) total += double(float(v));
    const double theta = u * total;
    double before = 0.0;
    for (std::int32_t i = 0; i < r.index; ++i) {
      before += double(float(host[static_cast<std::size_t>(i)]));
    }
    const double after = before + double(float(host[static_cast<std::size_t>(r.index)]));
    const double slack = total * 1e-4;
    EXPECT_LE(before, theta + slack) << "u=" << u;
    EXPECT_GT(after, theta - slack) << "u=" << u;
  }
}

TEST(WeightedSample, DeterministicPointMass) {
  Device dev;
  std::vector<half> host(1000, half(0.0f));
  host[421] = half(5.0f);
  auto w = dev.upload(host);
  for (double u : {0.0, 0.5, 0.99}) {
    EXPECT_EQ(weighted_sample(dev, w.tensor(), host.size(), u).index, 421);
  }
}

TEST(WeightedSample, SupportsHugeSupport) {
  // The torch.multinomial baseline caps support at 2^24 (§5); ours is
  // bounded only by memory. Use 2^21 here to keep the test quick but
  // assert the code path imposes no artificial cap.
  const std::size_t n = 1 << 21;
  Device dev;
  auto w = dev.alloc<half>(n, half(1.0f));
  const auto r = weighted_sample(dev, w.tensor(), n, 0.75);
  EXPECT_NEAR(static_cast<double>(r.index), 0.75 * static_cast<double>(n),
              static_cast<double>(n) * 0.01);
}

TEST(CountBelow, CountsMonotonePrefix) {
  const std::size_t n = 100000;
  Device dev;
  std::vector<float> cum(n);
  for (std::size_t i = 0; i < n; ++i) cum[i] = static_cast<float>(i + 1);
  auto c = dev.upload(cum);
  sim::Report rep;
  EXPECT_EQ(count_below<float>(dev, c.tensor(), n, 0.5, rep), 0u);
  EXPECT_EQ(count_below<float>(dev, c.tensor(), n, 1.0, rep), 1u);
  EXPECT_EQ(count_below<float>(dev, c.tensor(), n, 54321.5, rep), 54321u);
  EXPECT_EQ(count_below<float>(dev, c.tensor(), n, 1e12, rep), n);
}

}  // namespace
}  // namespace ascend::kernels
