// Property and stress tests for the serving layer: seeded randomized
// streams driven against small oracles. The invariants under test are the
// ones the serving engine documents as unconditional —
//   * the batch former loses nothing and duplicates nothing: every pushed
//     request is popped exactly once, in homogeneous GroupKey batches of
//     bounded size, FIFO within a lane;
//   * every submitted future resolves exactly once, whatever mix of
//     admission rejections, faults and shutdown the stream hits, and the
//     metrics counters tell the same story as the futures;
//   * the priority lanes do their job: interactive work does not starve
//     behind a bulk flood, and aged bulk work eventually leads.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/ascan.hpp"
#include "serve/batcher.hpp"
#include "serve/cluster.hpp"
#include "serve/engine.hpp"
#include "test_helpers.hpp"

namespace ascend {
namespace {

using namespace ascan::serve;
using testing::exact_scan_workload;

// ---------------------------------------------------------------------------
// Batcher property test: randomized push/pop streams against an oracle.

Request random_request(Rng& rng) {
  const auto prio = rng.bernoulli(0.3) ? Priority::Interactive : Priority::Bulk;
  const std::size_t n = 32 + 16 * rng.next_below(4);
  switch (rng.next_below(4)) {
    case 0:
      return Request::cumsum(exact_scan_workload(n, rng.next_u64()),
                             rng.bernoulli(0.5) ? 64 : 128,
                             rng.bernoulli(0.25), prio);
    case 1: {
      auto x = exact_scan_workload(n, rng.next_u64());
      auto f = rng.mask_i8(n, 0.1);
      f[0] = 1;
      return Request::segmented_cumsum(std::move(x), std::move(f), prio);
    }
    case 2:
      return Request::sort(rng.uniform_f16(n, -10.0, 10.0),
                           rng.bernoulli(0.5), ascan::SortAlgo::Radix, prio);
    default:
      return Request::top_p(rng.token_probs_f16(128), 0.9, rng.next_double(),
                            128, prio);
  }
}

TEST(BatcherProperty, RandomizedStreamPopsEveryRequestExactlyOnce) {
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    Rng rng(seed);
    const BatchPolicy policy{.max_batch = 4, .max_wait_s = 1e-3,
                             .aging_factor = 8.0};
    Batcher q;
    const auto base = Clock::now();
    constexpr std::size_t kTotal = 400;
    std::vector<bool> popped(kTotal, false);
    std::size_t pushed = 0;

    while (pushed < kTotal || !q.empty()) {
      const bool do_push =
          pushed < kTotal && (q.empty() || rng.bernoulli(0.6));
      if (do_push) {
        Pending p;
        p.req = random_request(rng);
        // Monotone synthetic enqueue times; a random minority is backdated
        // far enough to trip the bulk aging escape.
        p.enqueued = base + std::chrono::microseconds(pushed) -
                     (rng.bernoulli(0.05) ? std::chrono::milliseconds(100)
                                          : std::chrono::milliseconds(0));
        p.seq = pushed++;
        q.push(std::move(p));
        continue;
      }
      const auto now = base + std::chrono::microseconds(pushed);
      ASSERT_FALSE(q.empty());
      const std::size_t before = q.size();
      auto batch = q.pop_batch(policy, now);
      ASSERT_FALSE(batch.empty());
      ASSERT_LE(batch.size(), policy.max_batch);
      ASSERT_EQ(q.size(), before - batch.size());  // nothing lost or grown
      const GroupKey key = group_key(batch[0].req);
      if (batch[0].req.kind == OpKind::Sort) ASSERT_EQ(batch.size(), 1u);
      std::map<Priority, std::uint64_t> last_seq;
      for (const auto& p : batch) {
        ASSERT_TRUE(group_key(p.req) == key) << "mixed GroupKey in a batch";
        ASSERT_LT(p.seq, kTotal);
        ASSERT_FALSE(popped[p.seq]) << "request popped twice: " << p.seq;
        popped[p.seq] = true;
        // FIFO within a lane: admission order is preserved per priority.
        auto it = last_seq.find(p.req.priority);
        if (it != last_seq.end()) ASSERT_GT(p.seq, it->second);
        last_seq[p.req.priority] = p.seq;
      }
    }
    EXPECT_TRUE(std::all_of(popped.begin(), popped.end(),
                            [](bool b) { return b; }))
        << "seed " << seed << " lost a request";
  }
}

TEST(BatcherProperty, AgedBulkLeadsDespiteFreshInteractive) {
  const BatchPolicy policy{.max_batch = 4, .max_wait_s = 1e-3,
                           .aging_factor = 8.0};
  const auto now = Clock::now();
  const auto x = exact_scan_workload(64);
  Batcher q;
  Pending bulk;
  bulk.req = Request::cumsum(x, 64, false, Priority::Bulk);
  bulk.enqueued = now - std::chrono::milliseconds(50);  // > 8 * 1 ms old
  bulk.seq = 0;
  q.push(std::move(bulk));
  Pending hi;
  hi.req = Request::cumsum(x, 128, false, Priority::Interactive);
  hi.enqueued = now;
  hi.seq = 1;
  q.push(std::move(hi));
  auto b = q.pop_batch(policy, now);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0].seq, 0u) << "aged bulk must escape starvation";
}

// ---------------------------------------------------------------------------
// Engine stress: a seeded multi-client stream where every terminal state is
// possible — and every future must still resolve exactly once, with the
// metrics counters agreeing with the futures' testimony.

struct Tally {
  std::size_t ok = 0, rejected = 0, cancelled = 0, failed = 0;
  std::size_t total() const { return ok + rejected + cancelled + failed; }
};

template <typename Submit>
Tally stress_stream(Submit&& submit, std::size_t per_client, int clients,
                    std::uint64_t seed) {
  std::vector<std::future<Response>> futs(per_client *
                                          static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(seed + static_cast<std::uint64_t>(c) * 7919);
      for (std::size_t i = 0; i < per_client; ++i) {
        Request r = random_request(rng);
        if (rng.bernoulli(0.05)) r.x.clear();  // sprinkle invalid requests
        futs[static_cast<std::size_t>(c) * per_client + i] =
            submit(std::move(r));
      }
    });
  }
  for (auto& t : threads) t.join();
  Tally tally;
  for (auto& f : futs) {
    // get() blocking forever = a dangling future = the bug this test hunts.
    const auto status = f.wait_for(std::chrono::seconds(30));
    EXPECT_EQ(status, std::future_status::ready) << "future never resolved";
    if (status != std::future_status::ready) continue;
    switch (f.get().status) {
      case Status::Ok: tally.ok++; break;
      case Status::Rejected: tally.rejected++; break;
      case Status::Cancelled: tally.cancelled++; break;
      case Status::Failed: tally.failed++; break;
    }
  }
  return tally;
}

void expect_consistent(const MetricsSnapshot& m, const Tally& t) {
  EXPECT_EQ(m.submitted, t.total());
  EXPECT_EQ(m.rejected_capacity + m.rejected_invalid + m.rejected_shutdown,
            t.rejected);
  EXPECT_EQ(m.admitted,
            m.completed + m.failed + m.cancelled);  // no request vanished
  EXPECT_EQ(m.completed, t.ok);
  EXPECT_EQ(m.cancelled, t.cancelled);
  EXPECT_EQ(m.failed, t.failed);
}

TEST(EngineStress, EveryFutureResolvesExactlyOnceUnderDrain) {
  Engine engine({.policy = {.max_batch = 8, .max_wait_s = 100e-6},
                 .max_queue = 32,
                 .interactive_reserve = 4});
  const Tally t = stress_stream(
      [&](Request r) { return engine.submit(std::move(r)); }, 40, 3, 1234);
  engine.shutdown(ShutdownMode::Drain);
  EXPECT_EQ(t.total(), 120u);
  EXPECT_GT(t.ok, 0u);
  EXPECT_EQ(t.cancelled, 0u);  // drain completes everything admitted
  expect_consistent(engine.metrics(), t);
}

TEST(EngineStress, EveryFutureResolvesExactlyOnceUnderCancel) {
  Engine engine({.policy = {.max_batch = 16, .max_wait_s = 50e-3},
                 .max_queue = 64,
                 .interactive_reserve = 4});
  std::atomic<bool> go{false};
  // Cancel races the stream midway through: some requests complete, some
  // cancel, some reject post-shutdown — all must resolve.
  std::thread canceller([&] {
    while (!go.load()) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    engine.shutdown(ShutdownMode::Cancel);
  });
  const Tally t = stress_stream(
      [&](Request r) {
        go.store(true);
        return engine.submit(std::move(r));
      },
      40, 3, 5678);
  canceller.join();
  engine.shutdown(ShutdownMode::Cancel);  // idempotent
  EXPECT_EQ(t.total(), 120u);
  expect_consistent(engine.metrics(), t);
}

TEST(EngineStress, InteractiveDoesNotStarveBehindBulkFlood) {
  // A deep bulk backlog forms first; interactive requests submitted after
  // it must still be served ahead of the bulk tail (the priority lane),
  // rather than waiting out the whole flood. Aging is disabled so the
  // flood cannot legitimately reclaim the head (that escape is pinned by
  // AgedBulkLeadsDespiteFreshInteractive above).
  //
  // Determinism: the assertion is on *launch order* — every Response
  // carries the monotonic id of the serving launch that produced it — not
  // on per-request wall latency. (The original form compared wall times,
  // which a contended single-core host can invert through OS scheduling
  // alone, independent of lane priority.) A long multi-step "gate" launch
  // of a distinct GroupKey keeps the worker busy while the backlog forms,
  // so the whole flood and the interactive wave are queued before the
  // first post-gate pop and the lane decision is forced, not raced.
  Engine engine({.policy = {.max_batch = 4, .max_wait_s = 100e-6,
                            .aging_factor = 1e9},
                 .max_queue = 128});
  // 48 tile-boundary steps at tile 16: the worker chews on this for
  // orders of magnitude longer than the submissions below take.
  auto gate = engine.submit(Request::cumsum(exact_scan_workload(16 * 16 * 48),
                                            16, false, Priority::Bulk));
  // The gate is alone in the queue; once the queue empties the worker has
  // popped it and is inside the launch.
  while (engine.queue_depth() != 0) std::this_thread::yield();

  const auto x = exact_scan_workload(256);
  std::vector<std::future<Response>> bulk;
  for (int i = 0; i < 48; ++i) {
    bulk.push_back(
        engine.submit(Request::cumsum(x, 128, false, Priority::Bulk)));
  }
  std::vector<std::future<Response>> hi;
  for (int i = 0; i < 8; ++i) {
    hi.push_back(engine.submit(Request::cumsum(x, 64)));  // interactive
  }
  std::uint64_t hi_last_launch = 0;
  for (auto& f : hi) {
    const auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.reason;
    hi_last_launch = std::max(hi_last_launch, r.launch_id);
  }
  std::uint64_t bulk_after = 0, bulk_total = 0, bulk_max_launch = 0;
  for (auto& f : bulk) {
    const auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.reason;
    bulk_max_launch = std::max(bulk_max_launch, r.launch_id);
    ++bulk_total;
    if (r.launch_id > hi_last_launch) ++bulk_after;
  }
  ASSERT_TRUE(gate.get().ok());
  engine.shutdown(ShutdownMode::Drain);
  // Submitted last, the interactive requests launched before the bulk
  // tail (starvation would put them after the whole flood)...
  EXPECT_LT(hi_last_launch, bulk_max_launch);
  // ...and in fact ahead of most of the flood: everything queued behind
  // the gate launches interactive-first, so at least half the bulk
  // requests ride launches later than the last interactive one.
  EXPECT_GT(bulk_after, bulk_total / 2) << "hi_last=" << hi_last_launch
                                        << " bulk_max=" << bulk_max_launch;
}

// ---------------------------------------------------------------------------
// Cluster stress: the same exactly-once / consistency story across four
// devices with placement, spill and stealing all active.

TEST(ClusterStress, EveryFutureResolvesExactlyOnceAcrossDevices) {
  Cluster cluster({.policy = {.max_batch = 8, .max_wait_s = 100e-6},
                   .num_devices = 4,
                   .max_queue = 64,
                   .interactive_reserve = 8,
                   .steal_min_backlog = 4,
                   .spill_margin = 2});
  const Tally t = stress_stream(
      [&](Request r) { return cluster.submit(std::move(r)); }, 30, 4, 4321);
  cluster.shutdown(ShutdownMode::Drain);
  EXPECT_EQ(t.total(), 120u);
  EXPECT_GT(t.ok, 0u);
  EXPECT_EQ(t.cancelled, 0u);
  expect_consistent(cluster.metrics(), t);
  const auto m = cluster.metrics();
  EXPECT_EQ(m.routed_affinity + m.routed_spill, m.admitted);
}

}  // namespace
}  // namespace ascend
