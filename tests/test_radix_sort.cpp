// Functional tests of the radix sort (§5), its building blocks, and the
// baseline sort.
#include <gtest/gtest.h>

#include "kernels/radix_sort.hpp"
#include "kernels/reference.hpp"
#include "kernels/sort_baseline.hpp"
#include "test_helpers.hpp"

namespace ascend::kernels {
namespace {

using acc::Device;

std::vector<half> mixed_keys(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<half> keys(n);
  for (auto& v : keys) {
    const double roll = rng.next_double();
    if (roll < 0.8) {
      v = half(static_cast<float>(rng.uniform(-100.0, 100.0)));
    } else if (roll < 0.95) {
      // duplicates to exercise stability
      v = half(static_cast<float>(rng.next_below(8)));
    } else {
      v = half(0.0f);
    }
  }
  return keys;
}

void check_sorted_with_indices(std::span<const half> input,
                               const acc::GlobalBuffer<half>& keys_out,
                               const acc::GlobalBuffer<std::int32_t>& idx_out,
                               bool descending) {
  const auto want = ref::stable_sort(input, descending);
  for (std::size_t i = 0; i < input.size(); ++i) {
    ASSERT_EQ(keys_out[i].bits(), want.values[i].bits()) << "key @" << i;
    ASSERT_EQ(idx_out[i], want.indices[i]) << "index @" << i;
  }
}

class RadixSortF16 : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RadixSortF16, StableAscendingSortWithIndices) {
  const std::size_t n = GetParam();
  Device dev;
  auto host = mixed_keys(n, n * 3 + 1);
  auto keys = dev.upload(host);
  auto keys_out = dev.alloc<half>(n);
  auto idx_out = dev.alloc<std::int32_t>(n);
  radix_sort_f16(dev, keys.tensor(), keys_out.tensor(), idx_out.tensor(), n,
                 {});
  check_sorted_with_indices(std::span<const half>(host), keys_out, idx_out,
                            false);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RadixSortF16,
                         ::testing::Values<std::size_t>(1, 31, 1000, 8192,
                                                        100000),
                         [](const auto& ti) {
                           return "n" + std::to_string(ti.param);
                         });

TEST(RadixSortF16Desc, DescendingOrder) {
  const std::size_t n = 20000;
  Device dev;
  auto host = mixed_keys(n, 77);
  auto keys = dev.upload(host);
  auto keys_out = dev.alloc<half>(n);
  auto idx_out = dev.alloc<std::int32_t>(n);
  radix_sort_f16(dev, keys.tensor(), keys_out.tensor(), idx_out.tensor(), n,
                 {.descending = true});
  check_sorted_with_indices(std::span<const half>(host), keys_out, idx_out,
                            true);
}

TEST(RadixSortF16, NegativeZeroAndExtremes) {
  Device dev;
  std::vector<half> host = {half(-0.0f),      half(0.0f),
                            half::max(),      half::lowest(),
                            half(1.5f),       half(-1.5f),
                            half(0x1.0p-24f), half(-0x1.0p-24f)};
  const std::size_t n = host.size();
  auto keys = dev.upload(host);
  auto keys_out = dev.alloc<half>(n);
  auto idx_out = dev.alloc<std::int32_t>(n);
  radix_sort_f16(dev, keys.tensor(), keys_out.tensor(), idx_out.tensor(), n,
                 {});
  check_sorted_with_indices(std::span<const half>(host), keys_out, idx_out,
                            false);
  // -0 sorts next to +0 and both compare equal; stability keeps -0 first
  // (its encoding 0x7fff precedes 0x8000).
  EXPECT_EQ(keys_out[3].bits(), 0x8000u);  // -0 before +0
  EXPECT_EQ(keys_out[4].bits(), 0x0000u);
}

TEST(RadixSortU16, AscendingWithIndices) {
  const std::size_t n = 50000;
  Device dev;
  Rng rng(9);
  std::vector<std::uint16_t> host(n);
  for (auto& v : host) v = static_cast<std::uint16_t>(rng.next_below(1 << 16));
  auto keys = dev.upload(host);
  auto keys_out = dev.alloc<std::uint16_t>(n);
  auto idx_out = dev.alloc<std::int32_t>(n);
  radix_sort_u16(dev, keys.tensor(), keys_out.tensor(), idx_out.tensor(), n,
                 {});
  const auto want = ref::stable_sort_u16(std::span<const std::uint16_t>(host));
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(keys_out[i], want.values[i]) << i;
    ASSERT_EQ(idx_out[i], want.indices[i]) << i;
  }
}

TEST(RadixEncodeDecode, DeviceMatchesReferenceForAllFiniteValues) {
  // Reference-level property: encode preserves order, decode inverts.
  Rng rng(1);
  for (int trial = 0; trial < 20000; ++trial) {
    const half a = half::from_bits(
        static_cast<std::uint16_t>(rng.next_below(1 << 16)));
    const half b = half::from_bits(
        static_cast<std::uint16_t>(rng.next_below(1 << 16)));
    if (a.isnan() || b.isnan()) continue;
    const auto ea = ref::radix_encode_f16(a);
    const auto eb = ref::radix_encode_f16(b);
    EXPECT_EQ(ref::radix_decode_f16(ea).bits(), a.bits());
    if (float(a) < float(b)) {
      EXPECT_LT(ea, eb) << float(a) << " vs " << float(b);
    }
  }
}

TEST(RadixEncodeKernel, MatchesReferenceEncoding) {
  const std::size_t n = 10000;
  Device dev;
  auto host = mixed_keys(n, 5);
  auto keys = dev.upload(host);
  auto enc = dev.alloc<std::uint16_t>(n);
  auto idx = dev.alloc<std::int32_t>(n);
  radix_encode_kernel(dev, keys.tensor(), enc.tensor(), idx.tensor(), n,
                      /*descending=*/false);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(enc[i], ref::radix_encode_f16(host[i])) << i;
    ASSERT_EQ(idx[i], static_cast<std::int32_t>(i)) << i;
  }
  // Decode round trip through the device kernel.
  auto back = dev.alloc<half>(n);
  radix_decode_kernel(dev, enc.tensor(), back.tensor(), n, false);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(back[i].bits(), host[i].bits()) << i;
  }
}

TEST(RadixExtractKernel, BuildsZeroBitFirstMask) {
  const std::size_t n = 4096;
  Device dev;
  Rng rng(3);
  std::vector<std::uint16_t> host(n);
  for (auto& v : host) v = static_cast<std::uint16_t>(rng.next_below(1 << 16));
  auto enc = dev.upload(host);
  auto mask = dev.alloc<std::int8_t>(n);
  for (int bit : {0, 7, 15}) {
    radix_extract_kernel(dev, enc.tensor(), mask.tensor(), n, bit);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(mask[i], ((host[i] >> bit) & 1) == 0 ? 1 : 0)
          << "bit " << bit << " @" << i;
    }
  }
}

TEST(SortBaseline, StableSortWithIndices) {
  for (std::size_t n : {std::size_t{1}, std::size_t{500}, std::size_t{8192},
                        std::size_t{40000}}) {
    Device dev;
    auto host = mixed_keys(n, n + 13);
    auto keys = dev.upload(host);
    auto keys_out = dev.alloc<half>(n);
    auto idx_out = dev.alloc<std::int32_t>(n);
    sort_baseline_f16(dev, keys.tensor(), keys_out.tensor(), idx_out.tensor(),
                      n, false);
    check_sorted_with_indices(std::span<const half>(host), keys_out, idx_out,
                              false);
  }
}

TEST(SortBaseline, DescendingOrder) {
  const std::size_t n = 12345;
  Device dev;
  auto host = mixed_keys(n, 99);
  auto keys = dev.upload(host);
  auto keys_out = dev.alloc<half>(n);
  auto idx_out = dev.alloc<std::int32_t>(n);
  sort_baseline_f16(dev, keys.tensor(), keys_out.tensor(), idx_out.tensor(),
                    n, true);
  check_sorted_with_indices(std::span<const half>(host), keys_out, idx_out,
                            true);
}

}  // namespace
}  // namespace ascend::kernels
