// Host execution engine regression tests: pooled execution and the timing
// cache must be observationally invisible — bit-identical Reports, values
// and traces versus freshly spawned threads and full discrete-event
// replays, for every operator family.
#include <cstdlib>
#include <functional>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/ascan.hpp"
#include "kernels/copy_kernel.hpp"
#include "kernels/scan_u.hpp"
#include "kernels/scan_ul1.hpp"
#include "kernels/vec_cumsum.hpp"
#include "sim/executor.hpp"
#include "test_helpers.hpp"

namespace ascend {
namespace {

using ascan::ScanAlgo;
using ascan::Session;

sim::MachineConfig cfg_with(sim::ExecutorMode mode,
                            bool timing_cache = false) {
  auto cfg = sim::MachineConfig::ascend_910b4();
  cfg.executor = mode;
  cfg.timing_cache = timing_cache;
  return cfg;
}

/// Distinct integer-valued fp16 keys (unique answer for sorts).
std::vector<half> distinct_keys(std::size_t n) {
  std::vector<half> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t p = (i * 2654435761u) % n;
    x[i] = half(static_cast<float>(p) - static_cast<float>(n / 2));
  }
  return x;
}

// ---------------------------------------------------------------------------
// Pool vs spawn: bit-identical Reports and values for every operator family.

/// Asserts spawn/pool Reports agree bit for bit. GM buffers carry
/// deterministic virtual addresses (gm_space.hpp) and op ids are
/// canonically renumbered before the timing pass, so even the L2- and
/// arbiter-derived fields must be independent of the executor and of host
/// heap/thread state.
void expect_reports_equivalent(const sim::Report& a, const sim::Report& b) {
  EXPECT_EQ(a.time_s, b.time_s) << "simulated time differs across executors";
  EXPECT_TRUE(sim::identical(a, b)) << "Report fields differ across executors";
  EXPECT_FALSE(a.any_faults());
  EXPECT_FALSE(b.any_faults());
}

/// Runs `op` on a spawn-mode and a pool-mode session and asserts the
/// Reports match on every address-independent field (values are asserted
/// inside `op`).
template <typename Op>
void expect_executors_identical(Op&& op) {
  Session spawn(cfg_with(sim::ExecutorMode::Spawn));
  Session pool(cfg_with(sim::ExecutorMode::Pool));
  const sim::Report a = op(spawn);
  const sim::Report b = op(pool);
  expect_reports_equivalent(a, b);
}

TEST(Executor, PoolMatchesSpawnBitExactOnSharedBuffers) {
  // Two devices, one set of GM buffers: every launch sees identical GM
  // addresses, so the full Report — l2_hit_bytes and fluid-model fields
  // included — must match bit for bit between executors. scan_u/scan_ul1
  // upload ScanConstants matrices per call; the deterministic virtual GM
  // allocator hands the pool device the same (recycled) virtual addresses
  // the spawn device's call used, so they qualify too.
  const std::size_t n = 8192;
  acc::Device spawn(cfg_with(sim::ExecutorMode::Spawn));
  acc::Device pool(cfg_with(sim::ExecutorMode::Pool));
  auto x = spawn.upload(testing::exact_scan_workload(n, 31));
  auto y = spawn.alloc<half>(n);
  std::vector<half> va(n);

  using KernelFn = std::function<sim::Report(acc::Device&)>;
  const std::pair<const char*, KernelFn> cases[] = {
      {"copy", [&](acc::Device& d) {
         return kernels::copy_kernel<half>(d, x.tensor(), y.tensor(), n, 0);
       }},
      {"scan_u", [&](acc::Device& d) {
         return kernels::scan_u(d, x.tensor(), y.tensor(), n, 128);
       }},
      {"scan_ul1", [&](acc::Device& d) {
         return kernels::scan_ul1(d, x.tensor(), y.tensor(), n, 128);
       }},
      {"vec_cumsum", [&](acc::Device& d) {
         return kernels::vec_cumsum(d, x.tensor(), y.tensor(), n);
       }},
  };
  for (const auto& [name, fn] : cases) {
    const sim::Report a = fn(spawn);
    va = y.host();
    const sim::Report b = fn(pool);
    EXPECT_TRUE(sim::identical(a, b))
        << name << ": spawn time " << a.time_s << "s vs pool " << b.time_s;
    EXPECT_EQ(va, y.host()) << name << ": values differ across executors";
  }
}

TEST(Executor, PoolMatchesSpawnEveryScanAlgo) {
  const auto x = testing::exact_scan_workload(4096, 23);
  {  // MCScan (fp32 output path)
    std::vector<float> first;
    expect_executors_identical([&](Session& s) {
      auto r = s.cumsum(x);
      if (first.empty()) {
        first = r.values;
      } else {
        EXPECT_EQ(first, r.values) << "MCScan values differ across executors";
      }
      return r.report;
    });
  }
  for (ScanAlgo algo :
       {ScanAlgo::ScanU, ScanAlgo::ScanUL1, ScanAlgo::VectorBaseline}) {
    std::vector<half> first;
    expect_executors_identical([&](Session& s) {
      auto r = s.cumsum_f16(x, {.algo = algo});
      if (first.empty()) {
        first = r.values;
      } else {
        const bool same = first == r.values;
        EXPECT_TRUE(same) << "values differ across executors, algo "
                          << static_cast<int>(algo);
      }
      return r.report;
    });
  }
}

TEST(Executor, PoolMatchesSpawnSort) {
  const auto keys = distinct_keys(2048);
  std::vector<half> values;
  std::vector<std::int32_t> indices;
  expect_executors_identical([&](Session& s) {
    auto r = s.sort(keys);
    if (values.empty()) {
      values = r.values;
      indices = r.indices;
    } else {
      EXPECT_TRUE(values == r.values && indices == r.indices)
          << "sort output differs across executors";
    }
    return r.report;
  });
}

TEST(Executor, PoolMatchesSpawnTopPSampleBatch) {
  const std::size_t batch = 4, vocab = 512;
  std::vector<half> probs(batch * vocab);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t i = 0; i < vocab; ++i) {
      const std::size_t p = (i * 2654435761u) % vocab;
      probs[b * vocab + i] = half(static_cast<float>(p + 1) / 512.0f);
    }
  }
  const std::vector<double> u = {0.1, 0.4, 0.7, 0.95};
  std::vector<std::int32_t> tokens;
  expect_executors_identical([&](Session& s) {
    auto r = s.top_p_sample_batch(probs, batch, vocab, 0.9, u);
    if (tokens.empty()) {
      tokens = r.tokens;
    } else {
      EXPECT_EQ(tokens, r.tokens) << "sampled tokens differ across executors";
    }
    return r.report;
  });
}

TEST(Executor, RepeatedLaunchesOnPoolStayIdentical) {
  // Repeated launches run on recycled contexts/arenas/scratch — they must
  // reproduce values and every trace-derived metric exactly. Session::cumsum
  // uploads fresh GM buffers per call, but the virtual-address free list
  // hands each repeat the same addresses, so from the second call on (L2
  // warm) the Reports are bit-identical.
  Session s(cfg_with(sim::ExecutorMode::Pool));
  const auto x = testing::exact_scan_workload(2048, 5);
  const auto r1 = s.cumsum(x);
  const auto r2 = s.cumsum(x);
  const auto r3 = s.cumsum(x);
  EXPECT_EQ(r1.values, r2.values);
  EXPECT_EQ(r2.values, r3.values);
  EXPECT_EQ(r1.report.num_ops, r3.report.num_ops);
  EXPECT_TRUE(sim::identical(r2.report, r3.report))
      << "repeated Session launches must converge to bit-identical Reports";

  // Device-resident repeats on fixed buffers: no internal GM allocations,
  // so after the first (cold-L2) launch the Reports must be bit-identical.
  acc::Device dev(cfg_with(sim::ExecutorMode::Pool));
  auto dx = dev.upload(x);
  auto dy = dev.alloc<half>(x.size());
  (void)kernels::vec_cumsum(dev, dx.tensor(), dy.tensor(), x.size());
  const sim::Report warm2 =
      kernels::vec_cumsum(dev, dx.tensor(), dy.tensor(), x.size());
  const sim::Report warm3 =
      kernels::vec_cumsum(dev, dx.tensor(), dy.tensor(), x.size());
  EXPECT_TRUE(sim::identical(warm2, warm3))
      << "steady-state repeated launches must be bit-identical";
}

TEST(Executor, PoolGrowsToLargestLaunchAndKeepsWorkers) {
  acc::Device dev(cfg_with(sim::ExecutorMode::Pool));
  auto x = dev.alloc<half>(4096, half(1.0f));
  auto y = dev.alloc<half>(4096);
  kernels::copy_kernel<half>(dev, x.tensor(), y.tensor(), 4096, 2);
  const int small = dev.engine().pool_workers();
  EXPECT_EQ(small, 2);  // VectorOnly launch of 2 blocks = 2 sub-cores
  kernels::copy_kernel<half>(dev, x.tensor(), y.tensor(), 4096, 0);
  const int large = dev.engine().pool_workers();
  EXPECT_EQ(large, dev.config().num_vec_cores());
  kernels::copy_kernel<half>(dev, x.tensor(), y.tensor(), 4096, 1);
  EXPECT_EQ(dev.engine().pool_workers(), large) << "pool must never shrink";
}

// ---------------------------------------------------------------------------
// Timing cache: hits only when provably bit-exact.

TEST(Executor, TimingCacheHitsConstantShapeLaunches) {
  acc::Device dev(cfg_with(sim::ExecutorMode::Pool, /*timing_cache=*/true));
  ASSERT_TRUE(dev.engine().timing_cache_enabled());
  auto x = dev.alloc<half>(8192, half(2.0f));
  auto y = dev.alloc<half>(8192);

  // Device-resident repeated launches of a constant shape: the L2 reaches
  // its steady state, after which the cache may serve Reports.
  std::vector<sim::Report> reps;
  for (int i = 0; i < 6; ++i) {
    reps.push_back(kernels::copy_kernel<half>(dev, x.tensor(), y.tensor(),
                                              8192, 4));
  }
  const auto& stats = dev.engine().cache_stats();
  EXPECT_EQ(stats.lookups, 6u);
  EXPECT_GE(stats.hits, 2u) << "steady-state launches should hit the cache";
  EXPECT_LT(dev.engine().replays(), 6u);
  // Cached Reports are bit-identical to the replayed steady state.
  for (std::size_t i = 2; i < reps.size(); ++i) {
    EXPECT_TRUE(sim::identical(reps[i - 1], reps[i])) << "launch " << i;
  }

  // A cache-enabled device must produce the same Reports as a cache-free
  // one, launch by launch.
  acc::Device ref(cfg_with(sim::ExecutorMode::Pool, /*timing_cache=*/false));
  auto rx = ref.alloc<half>(8192, half(2.0f));
  auto ry = ref.alloc<half>(8192);
  // Note: gm addresses differ between devices, so compare each device's own
  // steady-state convergence instead of launch-by-launch equality of
  // l2_hit_bytes-bearing fields across devices.
  sim::Report prev;
  for (int i = 0; i < 6; ++i) {
    const auto r =
        kernels::copy_kernel<half>(ref, rx.tensor(), ry.tensor(), 8192, 4);
    if (i >= 2) {
      EXPECT_TRUE(sim::identical(prev, r));
    }
    prev = r;
  }
  EXPECT_EQ(ref.engine().cache_stats().lookups, 0u);
  EXPECT_EQ(ref.engine().replays(), 6u);
}

TEST(Executor, TimingCacheInvalidatedByL2Reset) {
  acc::Device dev(cfg_with(sim::ExecutorMode::Pool, /*timing_cache=*/true));
  auto x = dev.alloc<half>(8192, half(3.0f));
  auto y = dev.alloc<half>(8192);
  for (int i = 0; i < 5; ++i) {
    kernels::copy_kernel<half>(dev, x.tensor(), y.tensor(), 8192, 4);
  }
  const auto hits_before = dev.engine().cache_stats().hits;
  ASSERT_GE(hits_before, 1u);
  dev.l2().reset();  // generation bump: cached timings are now stale
  const auto r1 =
      kernels::copy_kernel<half>(dev, x.tensor(), y.tensor(), 8192, 4);
  EXPECT_EQ(dev.engine().cache_stats().hits, hits_before)
      << "a reset L2 must force a replay";
  // The replay after the reset observes a cold L2 again.
  EXPECT_GT(r1.time_s, 0.0);
}

TEST(Executor, TimingCacheBypassedForTimeline) {
  acc::Device dev(cfg_with(sim::ExecutorMode::Pool, /*timing_cache=*/true));
  const std::size_t n = 4096;
  auto x = dev.alloc<half>(n, half(1.0f));
  auto y = dev.alloc<half>(n);
  auto probe = [&](sim::Timeline* tl) {
    return acc::launch(dev,
                       {.block_dim = 1,
                        .mode = acc::LaunchMode::VectorOnly,
                        .name = "probe",
                        .timeline = tl},
                       [&](acc::KernelContext& ctx) {
                         acc::TPipe pipe(ctx);
                         acc::TQue q(ctx, acc::TPosition::VECIN);
                         pipe.InitBuffer(q, 2, n * sizeof(half));
                         auto t = q.AllocTensor<half>();
                         acc::DataCopy(ctx, t, x.tensor(), n);
                         acc::DataCopy(ctx, y.tensor(), t, n);
                         q.FreeTensor(t);
                       });
  };
  for (int i = 0; i < 5; ++i) probe(nullptr);
  const auto hits_before = dev.engine().cache_stats().hits;
  ASSERT_GE(hits_before, 1u);
  // A Timeline-carrying launch cannot be served from the cache (a hit has
  // no schedule to export): it must bypass, replay, and fill the timeline.
  sim::Timeline tl;
  const auto rep = probe(&tl);
  EXPECT_EQ(dev.engine().cache_stats().bypasses, 1u);
  EXPECT_EQ(tl.events.size(), rep.num_ops);
  EXPECT_GT(tl.total_s, 0.0);
  // And the bypassed replay still matches the cached steady state.
  const auto again = probe(nullptr);
  EXPECT_TRUE(sim::identical(rep, again));
}

// ---------------------------------------------------------------------------
// Runtime switches.

TEST(Executor, EnvSwitchSelectsExecutor) {
  ::setenv("ASCAN_EXECUTOR", "spawn", 1);
  EXPECT_EQ(sim::resolve_executor_mode(sim::ExecutorMode::Auto),
            sim::ExecutorMode::Spawn);
  ::setenv("ASCAN_EXECUTOR", "POOL", 1);  // case-insensitive
  EXPECT_EQ(sim::resolve_executor_mode(sim::ExecutorMode::Auto),
            sim::ExecutorMode::Pool);
  ::setenv("ASCAN_EXECUTOR", "bogus", 1);
  EXPECT_THROW(sim::resolve_executor_mode(sim::ExecutorMode::Auto), Error);
  ::unsetenv("ASCAN_EXECUTOR");
  EXPECT_EQ(sim::resolve_executor_mode(sim::ExecutorMode::Auto),
            sim::ExecutorMode::Pool);  // default
  // An explicit MachineConfig field wins over the environment.
  ::setenv("ASCAN_EXECUTOR", "pool", 1);
  EXPECT_EQ(sim::resolve_executor_mode(sim::ExecutorMode::Spawn),
            sim::ExecutorMode::Spawn);
  ::unsetenv("ASCAN_EXECUTOR");
}

TEST(Executor, EnvSwitchSelectsTimingCache) {
  ::setenv("ASCAN_TIMING_CACHE", "1", 1);
  EXPECT_TRUE(sim::resolve_timing_cache(false));
  ::setenv("ASCAN_TIMING_CACHE", "off", 1);
  EXPECT_FALSE(sim::resolve_timing_cache(true));
  ::unsetenv("ASCAN_TIMING_CACHE");
  EXPECT_TRUE(sim::resolve_timing_cache(true));
  EXPECT_FALSE(sim::resolve_timing_cache(false));
}

}  // namespace
}  // namespace ascend
