// Concurrency tests for the host hot path (DESIGN.md "Host hot path"):
// the lock-free MPSC submission ring and the sharded metrics accumulator.
// These are the two structures the engine trusts with exactly-once
// delivery and exported-counter consistency, so they get direct
// multi-threaded batteries here in addition to the engine-level stress
// suites (test_serve_properties.cpp). Everything is also run under the
// tsan preset (ctest -L serve) — the memory-ordering contracts in
// mpsc_queue.hpp / metrics.hpp are claims these tests give the race
// detector a chance to falsify.
#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/engine.hpp"
#include "serve/metrics.hpp"
#include "serve/mpsc_queue.hpp"
#include "test_helpers.hpp"

namespace ascend {
namespace {

using namespace ascan::serve;
using testing::exact_scan_workload;

// ---------------------------------------------------------------------------
// MpscRing.

TEST(MpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(MpscRing<int>(100).capacity(), 128u);
  EXPECT_EQ(MpscRing<int>(128).capacity(), 128u);
}

TEST(MpscRing, SingleThreadFifoAcrossManyLaps) {
  // Capacity 4: a few hundred elements lap the ring dozens of times, so
  // the per-cell sequence bookkeeping is exercised well past lap 0.
  MpscRing<int> ring(4);
  int next_in = 0, next_out = 0;
  for (int round = 0; round < 100; ++round) {
    while (ring.try_push(int{next_in})) ++next_in;
    EXPECT_EQ(next_in - next_out, static_cast<int>(ring.capacity()));
    int v = -1;
    while (ring.try_pop(v)) {
      EXPECT_EQ(v, next_out);
      ++next_out;
    }
    EXPECT_EQ(next_in, next_out);
  }
}

TEST(MpscRing, FullRingLeavesRejectedValueIntact) {
  MpscRing<std::unique_ptr<int>> ring(2);
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(1)));
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(2)));
  auto rejected = std::make_unique<int>(3);
  ASSERT_FALSE(ring.try_push(std::move(rejected)));
  // The contract: a failed push must not consume the value (the engine
  // falls back to a locked path with the same Pending).
  ASSERT_NE(rejected, nullptr);
  EXPECT_EQ(*rejected, 3);
}

TEST(MpscRing, PopReleasesPayloadImmediately) {
  // The ring stores T by value in its cells; a popped cell must not keep
  // the old payload alive until the next lap overwrites it (a Pending
  // holds whole request vectors — that memory must free at pop time).
  MpscRing<std::shared_ptr<int>> ring(4);
  auto payload = std::make_shared<int>(7);
  std::weak_ptr<int> watch = payload;
  ASSERT_TRUE(ring.try_push(std::move(payload)));
  std::shared_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(*out, 7);
  out.reset();
  EXPECT_TRUE(watch.expired()) << "cell kept the payload alive after pop";
}

TEST(MpscRing, MultiProducerDeliversExactlyOnceInProducerOrder) {
  // P producers push tagged sequences while one consumer drains
  // concurrently. Exactly-once: every (producer, seq) arrives once.
  // FIFO-per-producer: each producer's sequence arrives in order (the
  // fetch_add cell claim makes the interleaving arbitrary, but a single
  // producer's pushes are ordered by its program order).
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  MpscRing<std::uint64_t> ring(64);  // small: forces full-ring backoff
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const auto tagged = (static_cast<std::uint64_t>(p) << 32) |
                            static_cast<std::uint64_t>(i);
        while (!ring.try_push(std::uint64_t{tagged})) {
          std::this_thread::yield();  // full: wait for the consumer
        }
      }
    });
  }
  std::vector<int> next_seq(kProducers, 0);
  std::uint64_t received = 0;
  while (received < static_cast<std::uint64_t>(kProducers) * kPerProducer) {
    std::uint64_t v = 0;
    if (!ring.try_pop(v)) {
      std::this_thread::yield();
      continue;
    }
    const int p = static_cast<int>(v >> 32);
    const int seq = static_cast<int>(v & 0xffffffffu);
    ASSERT_LT(p, kProducers);
    ASSERT_EQ(seq, next_seq[static_cast<std::size_t>(p)])
        << "producer " << p << " out of order";
    ++next_seq[static_cast<std::size_t>(p)];
    ++received;
  }
  for (auto& t : producers) t.join();
  std::uint64_t leftover = 0;
  EXPECT_FALSE(ring.try_pop(leftover));  // nothing duplicated or stuck
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_seq[static_cast<std::size_t>(p)], kPerProducer);
  }
}

TEST(MpscRing, PublishedElementIsFullyVisibleToConsumer) {
  // Release/acquire contract: everything the producer wrote into the
  // element before try_push must be visible to the consumer after
  // try_pop. Heap payloads make a torn publish crash or trip tsan/asan.
  struct Fat {
    std::vector<int> data;
    int checksum = 0;
  };
  MpscRing<std::unique_ptr<Fat>> ring(8);
  std::atomic<bool> stop{false};
  std::thread producer([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      auto f = std::make_unique<Fat>();
      f->data.assign(64, i);
      f->checksum = 64 * i;
      if (!ring.try_push(std::move(f))) std::this_thread::yield();
      ++i;
    }
  });
  int popped = 0;
  while (popped < 20000) {
    std::unique_ptr<Fat> f;
    if (!ring.try_pop(f)) {
      std::this_thread::yield();
      continue;
    }
    int sum = 0;
    for (int v : f->data) sum += v;
    ASSERT_EQ(sum, f->checksum);
    ++popped;
  }
  stop.store(true);
  producer.join();
}

// ---------------------------------------------------------------------------
// Sharded Metrics.

Timing tiny_timing() {
  Timing t;
  t.queue_s = 10e-6;
  t.execute_s = 20e-6;
  t.total_s = 35e-6;
  return t;
}

TEST(ShardedMetrics, ConcurrentEventsMergeExactly) {
  // T threads hammer every histogram-coupled event; the final snapshot
  // must account for each exactly once, with the histogram/counter
  // pairings intact (the merge at export is the only aggregation point).
  Metrics m(/*hbm_peak_bytes_per_s=*/800e9);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int c = 0; c < kThreads; ++c) {
    threads.emplace_back([&m] {
      for (int i = 0; i < kPerThread; ++i) {
        m.on_submitted();
        m.on_admitted();
        const auto kind = static_cast<OpKind>(i % 4);
        const auto tier = static_cast<SloTier>(i % kSloTierCount);
        if (i % 16 == 0) {
          m.on_failed(tiny_timing());
        } else {
          m.on_completed(kind, tier, tiny_timing());
        }
        if (i % 8 == 0) {
          sim::Report rep;
          rep.time_s = 1e-6;
          rep.launches = 1;
          m.on_batch(/*occupancy=*/4, rep);
        }
        if (i % 4 == 0) m.on_chunk(5e-6);
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto s = m.snapshot();
  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(s.submitted, kTotal);
  EXPECT_EQ(s.admitted, kTotal);
  EXPECT_EQ(s.failed, kTotal / 16);
  EXPECT_EQ(s.completed, kTotal - kTotal / 16);
  EXPECT_EQ(s.batches, kTotal / 8);
  EXPECT_EQ(s.batched_requests, 4 * (kTotal / 8));
  EXPECT_EQ(s.stream_chunks, kTotal / 4);
  EXPECT_EQ(s.chunk_latency.count(), kTotal / 4);
  EXPECT_EQ(s.execute_latency.count(), s.completed);
  EXPECT_EQ(s.total_latency.count(), s.completed + s.failed);
  std::uint64_t by_kind_sum = 0;
  for (const auto v : s.by_kind) by_kind_sum += v;
  EXPECT_EQ(by_kind_sum, s.completed);
  std::uint64_t tier_sum = 0;
  for (const auto& h : s.tier_latency) tier_sum += h.count();
  EXPECT_EQ(tier_sum, s.completed);
  EXPECT_EQ(s.invariant_violations(), "");
}

TEST(ShardedMetrics, EverySnapshotDuringTheRaceIsInternallyConsistent) {
  // The export-ordering claim: a reader snapshotting *mid-race* never
  // observes a completion without its admission, or an admission without
  // its submission, and never a histogram/counter pairing torn apart —
  // because writers bump child-before-parent through release/acquire
  // program order and the reader merges in the reverse order.
  Metrics m(800e9);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int c = 0; c < 4; ++c) {
    writers.emplace_back([&] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        m.on_submitted();
        m.on_admitted();
        m.on_completed(static_cast<OpKind>(i % 4),
                       static_cast<SloTier>(i % kSloTierCount), tiny_timing());
        ++i;
      }
    });
  }
  for (int round = 0; round < 200; ++round) {
    const auto s = m.snapshot();
    EXPECT_EQ(s.invariant_violations(), "") << "round " << round;
    EXPECT_LE(s.admitted, s.submitted);
    EXPECT_LE(s.completed + s.failed + s.cancelled, s.admitted);
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  const auto final_snap = m.snapshot();
  EXPECT_EQ(final_snap.invariant_violations(), "");
  EXPECT_EQ(final_snap.completed, final_snap.admitted);
}

// ---------------------------------------------------------------------------
// Engine-level: the hot path end to end — lock-free submission from many
// producers racing a shutdown, every future resolving exactly once.

TEST(HostHotPath, ProducersRacingDrainShutdownAllResolve) {
  Engine engine({.policy = {.max_batch = 8, .max_wait_s = 50e-6},
                 .max_queue = 256});
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 64;
  std::vector<std::vector<std::future<Response>>> futs(kProducers);
  std::vector<std::thread> producers;
  std::atomic<int> submitted{0};
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      futs[static_cast<std::size_t>(p)].reserve(kPerProducer);
      for (int i = 0; i < kPerProducer; ++i) {
        futs[static_cast<std::size_t>(p)].push_back(engine.submit(
            Request::cumsum(exact_scan_workload(128, 7 + i), 64)));
        submitted.fetch_add(1);
      }
    });
  }
  // Begin the drain while producers are still submitting: late arrivals
  // either make it into the queue (and must complete) or reject with
  // Status::Rejected — nothing may hang or vanish.
  while (submitted.load() < kProducers * kPerProducer / 2) {
    std::this_thread::yield();
  }
  engine.shutdown(ShutdownMode::Drain);
  for (auto& t : producers) t.join();

  std::uint64_t ok = 0, rejected = 0;
  for (auto& lane : futs) {
    for (auto& f : lane) {
      ASSERT_EQ(f.wait_for(std::chrono::seconds(30)),
                std::future_status::ready);
      const auto r = f.get();
      if (r.ok()) {
        ++ok;
        EXPECT_EQ(r.values_f16.size(), 128u);
      } else {
        EXPECT_EQ(r.status, Status::Rejected);
        ++rejected;
      }
    }
  }
  EXPECT_EQ(ok + rejected,
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
  EXPECT_GT(ok, 0u);
  const auto m = engine.metrics();
  EXPECT_EQ(m.completed, ok);
  EXPECT_EQ(m.invariant_violations(), "");
}

}  // namespace
}  // namespace ascend
