// Functional tests of the batched scan schedules (§4.2).
#include <tuple>

#include <gtest/gtest.h>

#include "kernels/batched_scan.hpp"
#include "kernels/reference.hpp"
#include "test_helpers.hpp"

namespace ascend::kernels {
namespace {

using acc::Device;
using BatchedFn = sim::Report (*)(Device&, acc::GlobalTensor<half>,
                                  acc::GlobalTensor<half>, std::size_t,
                                  std::size_t, const BatchedScanOptions&);

struct Case {
  const char* name;
  BatchedFn fn;
};

class BatchedScan
    : public ::testing::TestWithParam<
          std::tuple<Case, std::size_t, std::size_t, std::size_t>> {};

TEST_P(BatchedScan, RowsMatchReferenceExactly) {
  const auto [c, batch, len, s] = GetParam();
  Device dev;
  const std::size_t total = batch * len;
  // Keep each row's scan exact: ones only at sparse positions.
  std::vector<half> host(total);
  Rng rng(batch * 131 + len);
  const double p = std::min(0.5, 1000.0 / static_cast<double>(len));
  for (auto& v : host) v = half(rng.bernoulli(p) ? 1.0f : 0.0f);
  auto x = dev.upload(host);
  auto y = dev.alloc<half>(total, half(-1.0f));
  c.fn(dev, x.tensor(), y.tensor(), batch, len, {.s = s});
  const auto want = ref::batched_inclusive_scan<half, half>(
      std::span<const half>(host), batch, len);
  for (std::size_t i = 0; i < total; ++i) {
    ASSERT_EQ(float(y[i]), float(want[i]))
        << c.name << " batch=" << batch << " len=" << len << " s=" << s
        << " i=" << i << " (row " << i / len << ", col " << i % len << ")";
  }
}

const Case kCases[] = {
    {"scan_u_based", &batched_scan_u},
    {"scan_ul1_based", &batched_scan_ul1},
};

INSTANTIATE_TEST_SUITE_P(
    Shapes, BatchedScan,
    ::testing::Combine(::testing::ValuesIn(kCases),
                       ::testing::Values<std::size_t>(1, 2, 7, 40, 64),
                       ::testing::Values<std::size_t>(100, 4096, 20000),
                       ::testing::Values<std::size_t>(128)),
    [](const auto& ti) {
      return std::string(std::get<0>(ti.param).name) + "_b" +
             std::to_string(std::get<1>(ti.param)) + "_l" +
             std::to_string(std::get<2>(ti.param));
    });

TEST(BatchedScanSmallTile, WorksWithS32) {
  Device dev;
  const std::size_t batch = 5, len = 2000;  // scans stay fp16-exact (< 2048)
  std::vector<half> host(batch * len, half(1.0f));
  auto x = dev.upload(host);
  auto y = dev.alloc<half>(batch * len, half(0.0f));
  batched_scan_u(dev, x.tensor(), y.tensor(), batch, len, {.s = 32});
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t j = 0; j < len; j += 271) {
      ASSERT_EQ(float(y[b * len + j]), static_cast<float>(j + 1))
          << b << "," << j;
    }
  }
}

TEST(BatchedScanSchedule, ComplementaryRegimes) {
  // Fig. 5: ScanU-based wins for large batch & short rows; ScanUL1-based
  // wins for small batch & long rows.
  Device dev;
  {
    const std::size_t batch = 40, len = 1024;
    auto x = dev.alloc<half>(batch * len, half(0.0f));
    auto y = dev.alloc<half>(batch * len, half(0.0f));
    const double tu =
        batched_scan_u(dev, x.tensor(), y.tensor(), batch, len, {}).time_s;
    const double tul =
        batched_scan_ul1(dev, x.tensor(), y.tensor(), batch, len, {}).time_s;
    EXPECT_LT(tu, tul) << "many short rows should favour the ScanU schedule";
  }
  {
    const std::size_t batch = 4, len = 1 << 18;
    auto x = dev.alloc<half>(batch * len, half(0.0f));
    auto y = dev.alloc<half>(batch * len, half(0.0f));
    const double tu =
        batched_scan_u(dev, x.tensor(), y.tensor(), batch, len, {}).time_s;
    const double tul =
        batched_scan_ul1(dev, x.tensor(), y.tensor(), batch, len, {}).time_s;
    EXPECT_LT(tul, tu) << "few long rows should favour the ScanUL1 schedule";
  }
}

TEST(BatchedScanEdge, EmptyBatchIsANoOp) {
  Device dev;
  auto x = dev.alloc<half>(4, half(1.0f));
  auto y = dev.alloc<half>(4, half(-2.0f));
  batched_scan_u(dev, x.tensor(), y.tensor(), 0, 4, {});
  EXPECT_EQ(float(y[0]), -2.0f);
}

}  // namespace
}  // namespace ascend::kernels
