// Tests for timeline capture and the chrome://tracing exporter.
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "ascendc/ascendc.hpp"
#include "kernels/scan_u.hpp"
#include "sim/trace_export.hpp"

namespace ascend {
namespace {

sim::Timeline capture_small_scan() {
  acc::Device dev(sim::MachineConfig::single_core());
  const std::size_t n = 40000;
  auto x = dev.alloc<half>(n, half(1.0f));
  auto y = dev.alloc<half>(n, half(0.0f));
  // Capture through a hand-rolled launch (scan_u does not expose the
  // spec); a simple vector kernel suffices for the schema checks.
  sim::Timeline tl;
  acc::launch(dev,
              {.block_dim = 1,
               .mode = acc::LaunchMode::VectorOnly,
               .name = "probe",
               .timeline = &tl},
              [&](acc::KernelContext& ctx) {
                acc::TPipe pipe(ctx);
                acc::TQue q(ctx, acc::TPosition::VECIN);
                pipe.InitBuffer(q, 2, 8192 * sizeof(half));
                for (std::size_t off = 0; off < n; off += 8192) {
                  const std::size_t len = std::min<std::size_t>(8192, n - off);
                  auto t = q.AllocTensor<half>();
                  acc::DataCopy(ctx, t, x.tensor().sub(off, len), len);
                  acc::Adds(ctx, t, t, half(1.0f), len);
                  acc::DataCopy(ctx, y.tensor().sub(off, len), t, len);
                  q.FreeTensor(t);
                }
              });
  return tl;
}

TEST(Timeline, CapturesEveryOpWithValidIntervals) {
  const auto tl = capture_small_scan();
  ASSERT_FALSE(tl.events.empty());
  EXPECT_GT(tl.total_s, 0.0);
  for (const auto& e : tl.events) {
    EXPECT_GE(e.start_s, 0.0) << e.name;
    EXPECT_GE(e.end_s, e.start_s) << e.name;
    EXPECT_LE(e.end_s, tl.total_s + 1e-12) << e.name;
  }
  // The probe kernel issues copies and vector adds.
  bool saw_copy = false, saw_adds = false;
  for (const auto& e : tl.events) {
    if (e.name == "datacopy.in") saw_copy = true;
    if (e.name == "adds") saw_adds = true;
  }
  EXPECT_TRUE(saw_copy);
  EXPECT_TRUE(saw_adds);
}

TEST(Timeline, EngineRowsSerialise) {
  const auto tl = capture_small_scan();
  // Events on the same (subcore, engine) row must not overlap.
  std::vector<sim::TimelineEvent> sorted = tl.events;
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.subcore != b.subcore) return a.subcore < b.subcore;
    if (a.engine != b.engine) return a.engine < b.engine;
    return a.start_s < b.start_s;
  });
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    const auto& p = sorted[i - 1];
    const auto& c = sorted[i];
    if (p.subcore == c.subcore && p.engine == c.engine) {
      // GM transfers release the engine at stream end but are recorded to
      // data-visibility end (+latency); allow that overlap window.
      const double slack =
          p.kind == sim::TraceOp::Kind::Transfer ? 3.1e-7 : 1e-12;
      EXPECT_LE(p.end_s, c.start_s + slack)
          << p.name << " overlaps " << c.name;
    }
  }
}

TEST(TraceExport, ProducesParsableChromeJson) {
  const auto tl = capture_small_scan();
  std::ostringstream os;
  sim::export_chrome_trace(tl, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("AIV subcore 0"), std::string::npos);
  // Balanced braces (cheap structural sanity).
  long depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(TraceExport, FileRoundTrip) {
  const auto tl = capture_small_scan();
  const std::string path = ::testing::TempDir() + "/ascan_trace.json";
  sim::export_chrome_trace_file(tl, path);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string line;
  std::getline(f, line);
  EXPECT_NE(line.find("traceEvents"), std::string::npos);
}

}  // namespace
}  // namespace ascend
