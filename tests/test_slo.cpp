// SLO-tier test battery (PR 9): EDF batch formation, per-request
// deadlines, and tile-boundary preemption of bulk launches.
//
// The invariants under test:
//  * EDF within a lane is exact under randomized arrival/deadline streams:
//    every popped batch is ordered by (deadline, seq) per lane, nothing is
//    lost or duplicated.
//  * Preemption is observationally invisible except in latency: a bulk
//    batch parked at a tile boundary and resumed later produces results
//    byte-identical to an unpreempted run (both host executors), with its
//    streamed chunks still bit-exact contiguous prefixes.
//  * Preemption never starves bulk: a launch whose rows have aged past the
//    starvation guard cannot be parked again (aging outranks preemption,
//    exactly as it outranks lane priority).
//  * Per-tenant admission quotas reject with typed reasons; deadline
//    misses and preemptions are counted; the metrics JSON shape is stable.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/ascan.hpp"
#include "serve/batcher.hpp"
#include "serve/cluster.hpp"
#include "serve/engine.hpp"
#include "sim/executor.hpp"
#include "test_helpers.hpp"

namespace ascend {
namespace {

using ascan::Session;
using namespace ascan::serve;
using testing::exact_scan_workload;

sim::MachineConfig cfg_with(sim::ExecutorMode mode) {
  auto cfg = sim::MachineConfig::ascend_910b4();
  cfg.executor = mode;
  return cfg;
}

// ---------------------------------------------------------------------------
// EDF property: randomized arrival/deadline streams against an oracle.

TEST(SloEdfProperty, RandomizedDeadlineStreamPopsInEdfOrderExactlyOnce) {
  for (std::uint64_t seed : {5u, 17u, 91u}) {
    Rng rng(seed);
    const BatchPolicy policy{.max_batch = 4, .max_wait_s = 1e-3,
                             .aging_factor = 8.0};
    Batcher q;
    const auto base = Clock::now();
    constexpr std::size_t kTotal = 300;
    std::vector<bool> popped(kTotal, false);
    std::size_t pushed = 0;

    while (pushed < kTotal || !q.empty()) {
      const bool do_push =
          pushed < kTotal && (q.empty() || rng.bernoulli(0.6));
      if (do_push) {
        Pending p;
        const auto prio =
            rng.bernoulli(0.4) ? Priority::Interactive : Priority::Bulk;
        p.req = Request::cumsum(exact_scan_workload(64, rng.next_u64()),
                                rng.bernoulli(0.5) ? 64 : 128, false, prio);
        p.enqueued = base + std::chrono::microseconds(pushed);
        // A random mix of deadline-bearing and best-effort requests, with
        // deliberate deadline collisions (quantized to 100 µs) so the
        // FIFO tie-break is exercised, not just the deadline order.
        if (rng.bernoulli(0.5)) {
          p.deadline = base + std::chrono::microseconds(
                                  100 * (1 + rng.next_below(8)));
        }
        p.seq = pushed++;
        q.push(std::move(p));
        continue;
      }
      const auto now = base + std::chrono::microseconds(pushed);
      auto batch = q.pop_batch(policy, now);
      ASSERT_FALSE(batch.empty());
      // Oracle: within a batch, each lane's members are EDF-ordered —
      // (deadline, seq) strictly increasing lexicographically.
      std::map<Priority, std::pair<Clock::time_point, std::uint64_t>> last;
      for (const auto& p : batch) {
        ASSERT_LT(p.seq, kTotal);
        ASSERT_FALSE(popped[p.seq]) << "popped twice: " << p.seq;
        popped[p.seq] = true;
        const auto key = std::make_pair(p.deadline, p.seq);
        auto it = last.find(p.req.priority);
        if (it != last.end()) {
          ASSERT_GT(key, it->second)
              << "EDF order violated within a lane (seq " << p.seq << ")";
        }
        last[p.req.priority] = key;
      }
    }
    EXPECT_TRUE(std::all_of(popped.begin(), popped.end(),
                            [](bool b) { return b; }))
        << "seed " << seed << " lost a request";
  }
}

// ---------------------------------------------------------------------------
// Tentpole: preempted-vs-unpreempted bit-exactness.
//
// A long bulk scan streams its first chunk (so the launch is provably in
// flight), then a deadline-bearing interactive request of a different
// GroupKey arrives. With an infinite preemption horizon the bulk launch
// must park at the next tile boundary, serve the interactive batch, and
// resume — and the final bulk payload must equal the direct Session
// result bit for bit, chunks included.

void run_preempted_bit_exact(sim::ExecutorMode mode) {
  const auto x = exact_scan_workload(16384, 77);  // tile 16 -> 64 steps
  Session direct(cfg_with(mode));
  const auto want = direct.cumsum_batched(x, 1, x.size(), 16);

  // Generous aging limit: the aging guard outranks preemption, and a
  // slot's age keeps growing while its own launch runs — a tight limit
  // would (correctly) veto every park.
  Engine engine({.policy = {.max_batch = 4,
                            .max_wait_s = 50e-6,
                            .aging_factor = 1e9,
                            .preempt_slack_s = 1e9},
                 .num_workers = 1,
                 .machine = cfg_with(mode)});

  std::mutex mu;
  std::condition_variable cv;
  bool started = false;
  std::vector<half> streamed;
  Request bulk = Request::cumsum(x, 16, false, Priority::Bulk);
  bulk.tier = SloTier::Bronze;
  bulk.on_chunk = [&](const StreamChunk& c) {
    std::lock_guard<std::mutex> lk(mu);
    EXPECT_EQ(c.offset, streamed.size()) << "chunk offsets not contiguous";
    streamed.insert(streamed.end(), c.values_f16.begin(),
                    c.values_f16.end());
    started = true;
    cv.notify_all();
  };
  auto bulk_fut = engine.submit(std::move(bulk));
  {
    std::unique_lock<std::mutex> lk(mu);
    ASSERT_TRUE(cv.wait_for(lk, std::chrono::seconds(10),
                            [&] { return started; }))
        << "bulk launch never streamed its first chunk";
  }

  // Different GroupKey (tile 64), so continuation admission cannot seat
  // it — preemption is the only way it runs before the bulk tail.
  auto hi_fut = engine.submit(
      Request::cumsum(exact_scan_workload(256, 3), 64)
          .with_slo(SloTier::Gold, 10e-3));

  const auto hi = hi_fut.get();
  ASSERT_TRUE(hi.ok()) << hi.reason;
  const auto r = bulk_fut.get();
  ASSERT_TRUE(r.ok()) << r.reason;
  engine.shutdown(ShutdownMode::Drain);

  EXPECT_GE(r.preemptions, 1u) << "bulk launch was never parked";
  EXPECT_EQ(r.resumed_from, -1)
      << "same-device preemption resume must not read as a failover";
  ASSERT_EQ(r.values_f16.size(), want.values.size());
  for (std::size_t i = 0; i < want.values.size(); ++i) {
    ASSERT_EQ(static_cast<float>(r.values_f16[i]),
              static_cast<float>(want.values[i]))
        << "preempted result diverged at index " << i;
  }
  // Streamed chunks spanning the park/resume still concatenate to the
  // exact final payload.
  ASSERT_EQ(streamed.size(), r.values_f16.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    ASSERT_EQ(static_cast<float>(streamed[i]),
              static_cast<float>(r.values_f16[i]))
        << "streamed prefix diverged at index " << i;
  }

  const auto m = engine.metrics();
  EXPECT_GE(m.preemptions, 1u);
  EXPECT_GE(m.preempted_tiles_resumed, 1u);
  EXPECT_EQ(m.tier_latency[static_cast<std::size_t>(SloTier::Gold)].count(),
            1u);
}

TEST(SloPreemption, PreemptedBulkBitExactSpawn) {
  run_preempted_bit_exact(sim::ExecutorMode::Spawn);
}

TEST(SloPreemption, PreemptedBulkBitExactPool) {
  run_preempted_bit_exact(sim::ExecutorMode::Pool);
}

TEST(SloPreemption, SegmentedPreemptedBulkBitExact) {
  const std::size_t n = 3 * 4096 + 1000;  // 4 steps at the 4096 stride
  const auto x = exact_scan_workload(n, 21);
  Rng rng(22);
  auto flags = rng.mask_i8(n, 0.02);
  flags[0] = 1;
  Session direct;
  const auto want = direct.segmented_cumsum(x, flags);

  Engine engine({.policy = {.max_batch = 4,
                            .max_wait_s = 50e-6,
                            .aging_factor = 1e9,
                            .preempt_slack_s = 1e9},
                 .num_workers = 1});
  std::mutex mu;
  std::condition_variable cv;
  bool started = false;
  Request bulk = Request::segmented_cumsum(x, flags);
  bulk.on_chunk = [&](const StreamChunk&) {
    std::lock_guard<std::mutex> lk(mu);
    started = true;
    cv.notify_all();
  };
  auto bulk_fut = engine.submit(std::move(bulk));
  {
    std::unique_lock<std::mutex> lk(mu);
    ASSERT_TRUE(cv.wait_for(lk, std::chrono::seconds(10),
                            [&] { return started; }));
  }
  auto hi_fut = engine.submit(
      Request::cumsum(exact_scan_workload(256, 4), 64)
          .with_slo(SloTier::Gold, 10e-3));
  ASSERT_TRUE(hi_fut.get().ok());
  const auto r = bulk_fut.get();
  ASSERT_TRUE(r.ok()) << r.reason;
  engine.shutdown(ShutdownMode::Drain);

  EXPECT_GE(r.preemptions, 1u);
  ASSERT_EQ(r.values_f32.size(), want.values.size());
  for (std::size_t i = 0; i < want.values.size(); ++i) {
    ASSERT_EQ(r.values_f32[i], want.values[i]) << "index " << i;
  }
}

TEST(SloPreemption, DisabledPreemptionNeverParks) {
  const auto x = exact_scan_workload(8192, 9);
  Engine engine({.policy = {.max_batch = 4,
                            .max_wait_s = 50e-6,
                            .preemption = false,
                            .preempt_slack_s = 1e9},
                 .num_workers = 1});
  auto bulk_fut =
      engine.submit(Request::cumsum(x, 16, false, Priority::Bulk));
  auto hi_fut = engine.submit(
      Request::cumsum(exact_scan_workload(256, 5), 64)
          .with_slo(SloTier::Gold, 1e-6));
  ASSERT_TRUE(hi_fut.get().ok());
  const auto r = bulk_fut.get();
  ASSERT_TRUE(r.ok()) << r.reason;
  engine.shutdown(ShutdownMode::Drain);
  EXPECT_EQ(r.preemptions, 0u);
  EXPECT_EQ(engine.metrics().preemptions, 0u);
}

// ---------------------------------------------------------------------------
// No starvation: the aging guard caps how long preemption can hold a bulk
// batch off the device, even under a sustained interactive deadline flood.

TEST(SloPreemption, AgedBulkCompletesUnderSustainedInteractiveDeadlines) {
  // Aggressive preemption (infinite horizon) against a tight aging limit:
  // 2 * 1 ms. The bulk launch may park a few times early, but once its
  // rows have waited past the limit it is never parked again and the
  // queue serves it ahead of the flood.
  Engine engine({.policy = {.max_batch = 2,
                            .max_wait_s = 1e-3,
                            .aging_factor = 2.0,
                            .preempt_slack_s = 1e9},
                 .max_queue = 512,
                 .num_workers = 1});
  const auto x = exact_scan_workload(16384, 31);  // tile 16 -> 64 steps
  auto bulk_fut =
      engine.submit(Request::cumsum(x, 16, false, Priority::Bulk));

  std::atomic<bool> stop{false};
  std::thread flood([&] {
    Rng rng(7);
    std::vector<std::future<Response>> futs;
    while (!stop.load()) {
      futs.push_back(engine.submit(
          Request::cumsum(exact_scan_workload(256, rng.next_u64()), 64)
              .with_slo(SloTier::Gold, 1e-3)));
      // Bounded outstanding work so the flood cannot fill the queue.
      if (futs.size() >= 8) {
        for (auto& f : futs) f.wait();
        futs.clear();
      }
    }
    for (auto& f : futs) f.wait();
  });

  const auto status = bulk_fut.wait_for(std::chrono::seconds(20));
  stop.store(true);
  flood.join();
  ASSERT_EQ(status, std::future_status::ready)
      << "bulk starved behind the interactive flood";
  const auto r = bulk_fut.get();
  ASSERT_TRUE(r.ok()) << r.reason;
  engine.shutdown(ShutdownMode::Drain);
}

// ---------------------------------------------------------------------------
// Deadline accounting.

TEST(SloDeadlines, MissesAreCountedAndFlagged) {
  Engine engine({.policy = {.max_batch = 4, .max_wait_s = 100e-6}});
  const auto x = exact_scan_workload(128);
  // A 1 ns deadline is unmeetable; the request must still complete Ok,
  // flagged as missed — deadlines are accounting, not cancellation.
  auto missed =
      engine.submit(Request::cumsum(x).with_slo(SloTier::Gold, 1e-9));
  auto met = engine.submit(Request::cumsum(x).with_slo(SloTier::Gold, 30.0));
  auto best_effort = engine.submit(Request::cumsum(x));
  const auto rm = missed.get();
  ASSERT_TRUE(rm.ok()) << rm.reason;
  EXPECT_TRUE(rm.deadline_missed);
  const auto rk = met.get();
  ASSERT_TRUE(rk.ok()) << rk.reason;
  EXPECT_FALSE(rk.deadline_missed);
  EXPECT_FALSE(best_effort.get().deadline_missed);
  engine.shutdown(ShutdownMode::Drain);
  const auto m = engine.metrics();
  EXPECT_EQ(m.deadline_misses, 1u);
  EXPECT_EQ(m.tier_latency[static_cast<std::size_t>(SloTier::Gold)].count(),
            2u);
  EXPECT_EQ(
      m.tier_latency[static_cast<std::size_t>(SloTier::Silver)].count(),
      1u);  // default tier
}

TEST(SloDeadlines, NegativeOrNanDeadlineIsRejectedTyped) {
  Engine engine{EngineOptions{}};
  const auto x = exact_scan_workload(64);
  auto r1 = engine.submit(Request::cumsum(x).with_slo(SloTier::Gold, -1.0));
  const auto resp = r1.get();
  EXPECT_EQ(resp.status, Status::Rejected);
  EXPECT_NE(resp.reason.find("deadline"), std::string::npos);
  engine.shutdown(ShutdownMode::Drain);
}

// ---------------------------------------------------------------------------
// Per-tenant admission quotas (cluster front end).

TEST(SloQuota, ExhaustionRejectsWithTypedReason) {
  Cluster cluster({.policy = {.max_batch = 4, .max_wait_s = 100e-6},
                   .num_devices = 2,
                   .tenant_quota = 3,
                   .tenant_quota_window_s = 3600.0});
  const auto x = exact_scan_workload(128);
  std::vector<std::future<Response>> acme;
  for (int i = 0; i < 5; ++i) {
    acme.push_back(
        cluster.submit(Request::cumsum(x).with_tenant("acme")));
  }
  // A different tenant and the default bucket are unaffected.
  auto other = cluster.submit(Request::cumsum(x).with_tenant("other"));
  auto anon = cluster.submit(Request::cumsum(x));
  std::size_t ok = 0, quota_rejected = 0;
  for (auto& f : acme) {
    const auto r = f.get();
    if (r.ok()) {
      ok++;
    } else {
      EXPECT_EQ(r.status, Status::Rejected);
      EXPECT_NE(r.reason.find("tenant quota exhausted"), std::string::npos)
          << r.reason;
      EXPECT_NE(r.reason.find("acme"), std::string::npos) << r.reason;
      quota_rejected++;
    }
  }
  EXPECT_EQ(ok, 3u);
  EXPECT_EQ(quota_rejected, 2u);
  EXPECT_TRUE(other.get().ok());
  EXPECT_TRUE(anon.get().ok());
  cluster.shutdown(ShutdownMode::Drain);
  const auto m = cluster.metrics();
  EXPECT_EQ(m.rejected_quota, 2u);
  EXPECT_NE(cluster.metrics_json().find("\"rejected_quota\":"),
            std::string::npos);
}

TEST(SloQuota, WindowSlidesAdmissionsBackIn) {
  // A wide window: quota is consumed at submit() time, and under the
  // sanitizers the gap between two submits can reach tens of ms.
  Cluster cluster({.policy = {.max_batch = 4, .max_wait_s = 100e-6},
                   .num_devices = 1,
                   .tenant_quota = 1,
                   .tenant_quota_window_s = 500e-3});
  const auto x = exact_scan_workload(64);
  auto first = cluster.submit(Request::cumsum(x).with_tenant("t"));
  auto rejected = cluster.submit(Request::cumsum(x).with_tenant("t")).get();
  ASSERT_TRUE(first.get().ok());
  EXPECT_EQ(rejected.status, Status::Rejected);
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  EXPECT_TRUE(cluster.submit(Request::cumsum(x).with_tenant("t")).get().ok())
      << "quota window never slid";
  cluster.shutdown(ShutdownMode::Drain);
}

// ---------------------------------------------------------------------------
// Metrics JSON shape regression: the new SLO fields must serialize under
// exactly these names (dashboards/scrapers key on them).

TEST(SloMetrics, JsonShapeIsStable) {
  Engine engine({.policy = {.max_batch = 4, .max_wait_s = 100e-6}});
  const auto x = exact_scan_workload(128);
  auto f = engine.submit(Request::cumsum(x).with_slo(SloTier::Gold, 1e-9));
  ASSERT_TRUE(f.get().ok());
  engine.shutdown(ShutdownMode::Drain);
  const std::string j = engine.metrics_json();
  for (const char* key :
       {"\"slo\"", "\"deadline_misses\"", "\"preemptions\"",
        "\"preempted_tiles_resumed\"", "\"tier_latency\"", "\"gold\"",
        "\"silver\"", "\"bronze\"", "\"rejected_quota\""}) {
    EXPECT_NE(j.find(key), std::string::npos) << "missing " << key;
  }
  // The counters behind the names agree with the run.
  EXPECT_NE(j.find("\"deadline_misses\":1"), std::string::npos) << j;
}

TEST(SloMetrics, MergedSnapshotsSumSloCounters) {
  MetricsSnapshot a;
  a.deadline_misses = 2;
  a.preemptions = 1;
  a.preempted_tiles_resumed = 3;
  a.rejected_quota = 4;
  a.tier_latency[0].add(1e-3);
  MetricsSnapshot b;
  b.deadline_misses = 5;
  b.tier_latency[0].add(2e-3);
  b.tier_latency[2].add(4e-3);
  const auto m = MetricsSnapshot::merged({a, b}, 1.0);
  EXPECT_EQ(m.deadline_misses, 7u);
  EXPECT_EQ(m.preemptions, 1u);
  EXPECT_EQ(m.preempted_tiles_resumed, 3u);
  EXPECT_EQ(m.rejected_quota, 4u);
  EXPECT_EQ(m.tier_latency[0].count(), 2u);
  EXPECT_EQ(m.tier_latency[2].count(), 1u);
}

}  // namespace
}  // namespace ascend
