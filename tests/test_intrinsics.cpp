// Functional tests for the intrinsic instruction set (vector, cube, copy).
#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "ascendc/ascendc.hpp"

namespace ascend::acc {
namespace {

// Runs `body` on a single vector core with a prepared UB scratch.
template <typename F>
void on_vector_core(F&& body) {
  Device dev(sim::MachineConfig::single_core());
  launch(dev, {.block_dim = 1, .mode = LaunchMode::VectorOnly},
         [&](KernelContext& c) { body(c); });
}

template <typename F>
void on_cube_core(F&& body) {
  Device dev(sim::MachineConfig::single_core());
  launch(dev, {.block_dim = 1, .mode = LaunchMode::CubeOnly},
         [&](KernelContext& c) { body(c); });
}

TEST(Intrinsics, DuplicateAddsMuls) {
  on_vector_core([](KernelContext& c) {
    TPipe pipe(c);
    TBuf buf(c, TPosition::VECCALC);
    pipe.InitBuffer(buf, 1024);
    auto t = buf.Get<float>();
    Duplicate(c, t, 2.0f, 8);
    Adds(c, t, t, 3.0f, 8);
    Muls(c, t, t, 2.0f, 8);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(t[i], 10.0f);
  });
}

TEST(Intrinsics, HalfLaneRounding) {
  on_vector_core([](KernelContext& c) {
    TPipe pipe(c);
    TBuf buf(c, TPosition::VECCALC);
    pipe.InitBuffer(buf, 1024);
    auto t = buf.Get<half>();
    Duplicate(c, t, half(2048.0f), 4);
    Adds(c, t, t, half(1.0f), 4);  // rounds back to 2048 (RNE)
    EXPECT_EQ(float(t[0]), 2048.0f);
  });
}

TEST(Intrinsics, ElementwiseBinaryOps) {
  on_vector_core([](KernelContext& c) {
    TPipe pipe(c);
    TBuf a(c, TPosition::VECCALC), b(c, TPosition::VECCALC),
        d(c, TPosition::VECCALC);
    pipe.InitBuffer(a, 256);
    pipe.InitBuffer(b, 256);
    pipe.InitBuffer(d, 256);
    auto ta = a.Get<float>(), tb = b.Get<float>(), td = d.Get<float>();
    for (int i = 0; i < 8; ++i) {
      ta[i] = static_cast<float>(i);
      tb[i] = 2.0f;
    }
    Add(c, td, ta, tb, 8);
    EXPECT_EQ(td[3], 5.0f);
    Sub(c, td, ta, tb, 8);
    EXPECT_EQ(td[3], 1.0f);
    Mul(c, td, ta, tb, 8);
    EXPECT_EQ(td[3], 6.0f);
    Max(c, td, ta, tb, 8);
    EXPECT_EQ(td[1], 2.0f);
    EXPECT_EQ(td[7], 7.0f);
    Min(c, td, ta, tb, 8);
    EXPECT_EQ(td[1], 1.0f);
    EXPECT_EQ(td[7], 2.0f);
  });
}

TEST(Intrinsics, BitwiseAndShifts) {
  on_vector_core([](KernelContext& c) {
    TPipe pipe(c);
    TBuf buf(c, TPosition::VECCALC);
    pipe.InitBuffer(buf, 1024);
    auto t = buf.Get<std::uint16_t>();
    t[0] = 0b1010110;
    ShiftRights(c, t, t, 3, 1);
    EXPECT_EQ(t[0], 0b1010u);
    Ands(c, t, t, std::uint16_t{1}, 1);
    EXPECT_EQ(t[0], 0u);
    t[0] = 0xff00;
    Not(c, t, t, 1);
    EXPECT_EQ(t[0], 0x00ffu);
    Xors(c, t, t, std::uint16_t{1}, 1);
    EXPECT_EQ(t[0], 0x00feu);
    ShiftLefts(c, t, t, 8, 1);
    EXPECT_EQ(t[0], 0xfe00u);
    Ors(c, t, t, std::uint16_t{1}, 1);
    EXPECT_EQ(t[0], 0xfe01u);
  });
}

TEST(Intrinsics, CastConversions) {
  on_vector_core([](KernelContext& c) {
    TPipe pipe(c);
    TBuf a(c, TPosition::VECCALC), b(c, TPosition::VECCALC);
    pipe.InitBuffer(a, 1024);
    pipe.InitBuffer(b, 1024);
    // f32 -> f16 rounds.
    auto f32 = a.Get<float>();
    auto f16 = b.Get<half>();
    f32[0] = 1.0009765625f;  // 1 + 2^-10: representable
    f32[1] = 1e9f;           // overflows to inf
    Cast(c, f16, f32, 2);
    EXPECT_EQ(float(f16[0]), 1.0009765625f);
    EXPECT_TRUE(f16[1].isinf());
    // i32 -> i8 saturates.
    auto i32 = a.Get<std::int32_t>();
    auto i8 = b.Get<std::int8_t>();
    i32[0] = 300;
    i32[1] = -300;
    i32[2] = 7;
    Cast(c, i8, i32, 3);
    EXPECT_EQ(i8[0], 127);
    EXPECT_EQ(i8[1], -128);
    EXPECT_EQ(i8[2], 7);
    // i8 -> i32 widens exactly.
    Cast(c, i32, i8, 3);
    EXPECT_EQ(i32[0], 127);
    EXPECT_EQ(i32[1], -128);
  });
}

TEST(Intrinsics, Reductions) {
  on_vector_core([](KernelContext& c) {
    TPipe pipe(c);
    TBuf a(c, TPosition::VECCALC), d(c, TPosition::VECCALC);
    pipe.InitBuffer(a, 4096);
    pipe.InitBuffer(d, 64);
    auto src = a.Get<float>();
    auto dst = d.Get<float>();
    for (int i = 0; i < 100; ++i) src[i] = static_cast<float>(i + 1);
    ReduceSum(c, dst, src, 100);
    EXPECT_EQ(dst[0], 5050.0f);
    ReduceMax(c, dst, src, 100);
    EXPECT_EQ(dst[0], 100.0f);
  });
}

TEST(Intrinsics, ReduceSumHalfUsesWideAccumulator) {
  on_vector_core([](KernelContext& c) {
    TPipe pipe(c);
    TBuf a(c, TPosition::VECCALC), d(c, TPosition::VECCALC);
    pipe.InitBuffer(a, 8192);
    pipe.InitBuffer(d, 64);
    auto src = a.Get<half>();
    auto dst = d.Get<half>();
    // 4096 ones: a serial fp16 accumulation would stall at 2048; the
    // float32-lane reduction reaches 4096 exactly.
    for (int i = 0; i < 4096; ++i) src[i] = half(1.0f);
    ReduceSum(c, dst, src, 4096);
    EXPECT_EQ(float(dst[0]), 4096.0f);
  });
}

TEST(Intrinsics, CompareScalarAndSelect) {
  on_vector_core([](KernelContext& c) {
    TPipe pipe(c);
    TBuf a(c, TPosition::VECCALC), m(c, TPosition::VECCALC),
        d(c, TPosition::VECCALC), z(c, TPosition::VECCALC);
    pipe.InitBuffer(a, 256);
    pipe.InitBuffer(m, 64);
    pipe.InitBuffer(d, 256);
    pipe.InitBuffer(z, 256);
    auto src = a.Get<float>();
    auto mask = m.Get<std::int8_t>();
    auto dst = d.Get<float>();
    auto zeros = z.Get<float>();
    for (int i = 0; i < 8; ++i) src[i] = static_cast<float>(i);
    Duplicate(c, zeros, 0.0f, 8);
    CompareScalar(c, mask, src, 4.0f, CmpMode::GE, 8);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(mask[i], i >= 4 ? 1 : 0);
    Select(c, dst, mask, src, zeros, 8);
    EXPECT_EQ(dst[2], 0.0f);
    EXPECT_EQ(dst[6], 6.0f);
  });
}

TEST(Intrinsics, GatherMaskCompacts) {
  on_vector_core([](KernelContext& c) {
    TPipe pipe(c);
    TBuf a(c, TPosition::VECCALC), m(c, TPosition::VECCALC),
        d(c, TPosition::VECCALC);
    pipe.InitBuffer(a, 256);
    pipe.InitBuffer(m, 64);
    pipe.InitBuffer(d, 256);
    auto src = a.Get<float>();
    auto mask = m.Get<std::int8_t>();
    auto dst = d.Get<float>();
    for (int i = 0; i < 8; ++i) {
      src[i] = static_cast<float>(i * 10);
      mask[i] = (i % 3 == 0) ? 1 : 0;  // 0, 3, 6
    }
    const std::size_t n = GatherMask(c, dst, src, mask, 8);
    ASSERT_EQ(n, 3u);
    EXPECT_EQ(dst[0], 0.0f);
    EXPECT_EQ(dst[1], 30.0f);
    EXPECT_EQ(dst[2], 60.0f);
  });
}

TEST(Intrinsics, GatherWithIndices) {
  on_vector_core([](KernelContext& c) {
    TPipe pipe(c);
    TBuf a(c, TPosition::VECCALC), ib(c, TPosition::VECCALC),
        d(c, TPosition::VECCALC);
    pipe.InitBuffer(a, 256);
    pipe.InitBuffer(ib, 256);
    pipe.InitBuffer(d, 256);
    auto src = a.Get<float>();
    auto idx = ib.Get<std::int32_t>();
    auto dst = d.Get<float>();
    for (int i = 0; i < 8; ++i) src[i] = static_cast<float>(i);
    idx[0] = 7;
    idx[1] = 0;
    idx[2] = 3;
    Gather(c, dst, src, idx, 3);
    EXPECT_EQ(dst[0], 7.0f);
    EXPECT_EQ(dst[1], 0.0f);
    EXPECT_EQ(dst[2], 3.0f);
  });
}

TEST(Intrinsics, CreateVecIndex) {
  on_vector_core([](KernelContext& c) {
    TPipe pipe(c);
    TBuf d(c, TPosition::VECCALC);
    pipe.InitBuffer(d, 256);
    auto idx = d.Get<std::int32_t>();
    CreateVecIndex(c, idx, 100, 8);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(idx[i], 100 + i);
  });
}

TEST(Intrinsics, CumSumMacro) {
  on_vector_core([](KernelContext& c) {
    TPipe pipe(c);
    TBuf a(c, TPosition::VECCALC), d(c, TPosition::VECCALC);
    pipe.InitBuffer(a, 256);
    pipe.InitBuffer(d, 256);
    auto src = a.Get<float>();
    auto dst = d.Get<float>();
    for (int i = 0; i < 8; ++i) src[i] = 1.0f;
    CumSum(c, dst, src, 8);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(dst[i], static_cast<float>(i + 1));
  });
}

TEST(Intrinsics, Sort32SortsChunksStably) {
  on_vector_core([](KernelContext& c) {
    TPipe pipe(c);
    TBuf kb(c, TPosition::VECCALC), ib(c, TPosition::VECCALC);
    pipe.InitBuffer(kb, 512);
    pipe.InitBuffer(ib, 512);
    auto keys = kb.Get<half>();
    auto idx = ib.Get<std::int32_t>();
    // Two chunks of 32, each with duplicate keys to check stability.
    for (int i = 0; i < 64; ++i) {
      keys[i] = half(static_cast<float>((63 - i) / 2));
      idx[i] = i;
    }
    Sort32(c, keys, idx, 64);
    for (int chunk = 0; chunk < 2; ++chunk) {
      for (int i = 1; i < 32; ++i) {
        const int b = chunk * 32;
        EXPECT_LE(float(keys[b + i - 1]), float(keys[b + i]));
        if (keys[b + i - 1] == keys[b + i]) {
          EXPECT_LT(idx[b + i - 1], idx[b + i]);  // stable
        }
      }
    }
  });
}

TEST(Intrinsics, MergeSortedIsStable) {
  on_vector_core([](KernelContext& c) {
    TPipe pipe(c);
    TBuf ka(c, TPosition::VECCALC), ia(c, TPosition::VECCALC),
        kb(c, TPosition::VECCALC), ib(c, TPosition::VECCALC),
        kd(c, TPosition::VECCALC), id(c, TPosition::VECCALC);
    for (auto* b : {&ka, &ia, &kb, &ib, &kd, &id}) pipe.InitBuffer(*b, 512);
    auto a_keys = ka.Get<half>();
    auto a_idx = ia.Get<std::int32_t>();
    auto b_keys = kb.Get<half>();
    auto b_idx = ib.Get<std::int32_t>();
    auto d_keys = kd.Get<half>();
    auto d_idx = id.Get<std::int32_t>();
    float av[] = {1, 3, 3, 5};
    float bv[] = {2, 3, 4};
    for (int i = 0; i < 4; ++i) {
      a_keys[i] = half(av[i]);
      a_idx[i] = i;  // 0..3
    }
    for (int i = 0; i < 3; ++i) {
      b_keys[i] = half(bv[i]);
      b_idx[i] = 10 + i;
    }
    MergeSorted(c, d_keys, d_idx, a_keys, a_idx, 4, b_keys, b_idx, 3);
    const float want_k[] = {1, 2, 3, 3, 3, 4, 5};
    const int want_i[] = {0, 10, 1, 2, 11, 12, 3};
    for (int i = 0; i < 7; ++i) {
      EXPECT_EQ(float(d_keys[i]), want_k[i]) << i;
      EXPECT_EQ(d_idx[i], want_i[i]) << i;
    }
  });
}

TEST(Intrinsics, MmadComputesMatmul) {
  on_cube_core([](KernelContext& c) {
    TPipe pipe(c);
    TBuf a1(c, TPosition::A1), a2(c, TPosition::A2), b2(c, TPosition::B2),
        co(c, TPosition::CO1);
    pipe.InitBuffer(a1, 4096);
    pipe.InitBuffer(a2, 4096);
    pipe.InitBuffer(b2, 4096);
    pipe.InitBuffer(co, 4096);
    auto stage = a1.Get<half>();
    auto A = a2.Get<half>();
    auto B = b2.Get<half>();
    auto C = co.Get<float>();
    // A = [[1,2],[3,4]], B = [[5,6],[7,8]] -> C = [[19,22],[43,50]]
    const float av[] = {1, 2, 3, 4}, bv[] = {5, 6, 7, 8};
    for (int i = 0; i < 4; ++i) stage[i] = half(av[i]);
    LoadData(c, A, stage, 4);
    for (int i = 0; i < 4; ++i) stage[i] = half(bv[i]);
    LoadData(c, B, stage, 4);
    Mmad(c, C, A, B, 2, 2, 2, /*accumulate=*/false);
    EXPECT_EQ(C[0], 19.0f);
    EXPECT_EQ(C[1], 22.0f);
    EXPECT_EQ(C[2], 43.0f);
    EXPECT_EQ(C[3], 50.0f);
    // Accumulation adds on top.
    Mmad(c, C, A, B, 2, 2, 2, /*accumulate=*/true);
    EXPECT_EQ(C[0], 38.0f);
  });
}

TEST(Intrinsics, MmadInt8AccumulatesInt32) {
  on_cube_core([](KernelContext& c) {
    TPipe pipe(c);
    TBuf a1(c, TPosition::A1), a2(c, TPosition::A2), b2(c, TPosition::B2),
        co(c, TPosition::CO1);
    pipe.InitBuffer(a1, 4096);
    pipe.InitBuffer(a2, 4096);
    pipe.InitBuffer(b2, 4096);
    pipe.InitBuffer(co, 8192);
    auto stage = a1.Get<std::int8_t>();
    auto A = a2.Get<std::int8_t>();
    auto B = b2.Get<std::int8_t>();
    auto C = co.Get<std::int32_t>();
    // 1x64 row of 100s times 64x1 column of 100s: 64*10000 = 640000
    // overflows int16 but not int32.
    for (int i = 0; i < 64; ++i) stage[i] = 100;
    LoadData(c, A, stage, 64);
    LoadData(c, B, stage, 64);
    Mmad(c, C, A, B, 1, 64, 1, false);
    EXPECT_EQ(C[0], 640000);
  });
}

TEST(Intrinsics, MmadEnforcesPositions) {
  on_cube_core([](KernelContext& c) {
    TPipe pipe(c);
    TBuf a2(c, TPosition::A2), co(c, TPosition::CO1);
    pipe.InitBuffer(a2, 1024);
    pipe.InitBuffer(co, 1024);
    auto A = a2.Get<half>();
    auto C = co.Get<float>();
    // B in L0A instead of L0B must be rejected.
    EXPECT_THROW(Mmad(c, C, A, A, 2, 2, 2, false), Error);
  });
}

TEST(Intrinsics, DataCopyRoundtripThroughUb) {
  Device dev(sim::MachineConfig::single_core());
  auto in = dev.alloc<float>(1024);
  auto out = dev.alloc<float>(1024, 0.0f);
  for (std::size_t i = 0; i < 1024; ++i) in[i] = static_cast<float>(i);
  auto in_t = in.tensor();
  auto out_t = out.tensor();
  auto rep = launch(dev, {.block_dim = 1, .mode = LaunchMode::VectorOnly},
                    [&](KernelContext& c) {
                      TPipe pipe(c);
                      TBuf b(c, TPosition::VECIN);
                      pipe.InitBuffer(b, 1024 * sizeof(float));
                      auto t = b.Get<float>();
                      DataCopy(c, t, in_t, 1024);
                      DataCopy(c, out_t, t, 1024);
                    });
  for (std::size_t i = 0; i < 1024; ++i) EXPECT_EQ(out[i], in[i]);
  EXPECT_EQ(rep.gm_read_bytes, 4096u);
  EXPECT_EQ(rep.gm_write_bytes, 4096u);
}

TEST(Intrinsics, DataCopy2DStridedColumnExtract) {
  Device dev(sim::MachineConfig::single_core());
  // 8 rows x 16 cols in GM; copy a 8x4 sub-block into UB densely.
  auto in = dev.alloc<std::int32_t>(128);
  for (int i = 0; i < 128; ++i) in[i] = i;
  auto out = dev.alloc<std::int32_t>(32, -1);
  auto in_t = in.tensor();
  auto out_t = out.tensor();
  launch(dev, {.block_dim = 1, .mode = LaunchMode::VectorOnly},
         [&](KernelContext& c) {
           TPipe pipe(c);
           TBuf b(c, TPosition::VECIN);
           pipe.InitBuffer(b, 32 * sizeof(std::int32_t));
           auto t = b.Get<std::int32_t>();
           DataCopy2D(c, t, in_t.sub(4, 124),
                      {.block_count = 8, .block_len = 4, .src_stride = 16,
                       .dst_stride = 4});
           DataCopy(c, out_t, t, 32);
         });
  for (int r = 0; r < 8; ++r) {
    for (int col = 0; col < 4; ++col) {
      EXPECT_EQ(out[static_cast<std::size_t>(r * 4 + col)], r * 16 + 4 + col);
    }
  }
}

TEST(Intrinsics, GetValueSerialisesAndReads) {
  on_vector_core([](KernelContext& c) {
    TPipe pipe(c);
    TBuf b(c, TPosition::VECCALC);
    pipe.InitBuffer(b, 64);
    auto t = b.Get<float>();
    t[3] = 9.0f;
    EXPECT_EQ(GetValue(c, t, 3), 9.0f);
    const auto anchor = c.trace().serial_anchor();
    EXPECT_NE(anchor, 0u);  // subsequent ops will depend on the read
    SetValue(c, t, 0, 1.0f);
    EXPECT_EQ(t[0], 1.0f);
  });
}

TEST(Intrinsics, VectorOpsRejectedOnCubeCore) {
  on_cube_core([](KernelContext& c) {
    TPipe pipe(c);
    TBuf b(c, TPosition::A1);
    pipe.InitBuffer(b, 64);
    auto t = b.Get<float>();
    EXPECT_THROW(Duplicate(c, t, 0.0f, 4), Error);
  });
}

TEST(Intrinsics, FixpipeCastsF32ToF16) {
  Device dev(sim::MachineConfig::single_core());
  auto out = dev.alloc<half>(16, half(0.0f));
  auto out_t = out.tensor();
  launch(dev, {.block_dim = 1, .mode = LaunchMode::CubeOnly},
         [&](KernelContext& c) {
           TPipe pipe(c);
           TBuf co(c, TPosition::CO1);
           pipe.InitBuffer(co, 64);
           auto C = co.Get<float>();
           for (int i = 0; i < 16; ++i) C[i] = static_cast<float>(i) + 0.5f;
           Fixpipe(c, out_t, C, 16);
         });
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(float(out[static_cast<std::size_t>(i)]),
              static_cast<float>(i) + 0.5f);
  }
}

}  // namespace
}  // namespace ascend::acc
