// Tests for the extension operators: cube-accumulated reduction and the
// 8-bit radix sort.
#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "kernels/radix_sort.hpp"
#include "kernels/reduce.hpp"
#include "test_helpers.hpp"

namespace ascend::kernels {
namespace {

using acc::Device;

class CubeReduce
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(CubeReduce, MatchesExactSum) {
  const auto [n, s] = GetParam();
  Device dev;
  Rng rng(n + s);
  std::vector<half> x(n);
  std::int64_t want = 0;
  for (auto& v : x) {
    const int val = static_cast<int>(rng.next_below(5));
    v = half(static_cast<float>(val));
    want += val;
  }
  auto g = dev.upload(x);
  const auto r = reduce_cube(dev, g.tensor(), n, {.s = s});
  EXPECT_EQ(static_cast<std::int64_t>(r.value), want)
      << "n=" << n << " s=" << s;
  const auto rv = reduce_vector(dev, g.tensor(), n);
  EXPECT_EQ(static_cast<std::int64_t>(rv.value), want);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CubeReduce,
    ::testing::Combine(::testing::Values<std::size_t>(1, 1000, 16384, 500000),
                       ::testing::Values<std::size_t>(32, 128)),
    [](const auto& ti) {
      return "n" + std::to_string(std::get<0>(ti.param)) + "_s" +
             std::to_string(std::get<1>(ti.param));
    });

TEST(CubeReduce, NegativeAndFractionalValues) {
  Device dev;
  std::vector<half> x = {half(1.5f), half(-2.25f), half(3.0f), half(-0.5f)};
  auto g = dev.upload(x);
  const auto r = reduce_cube(dev, g.tensor(), x.size(), {});
  EXPECT_FLOAT_EQ(r.value, 1.75f);
}

TEST(CubeReduce, FasterThanVectorReduceAtScale) {
  const std::size_t n = 1 << 21;
  Device dev;
  auto x = dev.alloc<half>(n, half(1.0f));
  const auto rc = reduce_cube(dev, x.tensor(), n, {});
  const auto rv = reduce_vector(dev, x.tensor(), n);
  EXPECT_EQ(rc.value, rv.value);
  // Both are memory-bound reads; they should be within 2x of each other
  // (the cube path frees the vector units rather than being faster).
  EXPECT_LT(rc.report.time_s, 2.0 * rv.report.time_s);
  EXPECT_LT(rv.report.time_s, 2.0 * rc.report.time_s);
}

class RadixU8 : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RadixU8, StableSortWithIndices) {
  const std::size_t n = GetParam();
  Device dev;
  Rng rng(n * 5 + 3);
  std::vector<std::uint8_t> keys(n);
  for (auto& v : keys) v = static_cast<std::uint8_t>(rng.next_below(256));
  auto g = dev.upload(keys);
  auto ok = dev.alloc<std::uint8_t>(n);
  auto oi = dev.alloc<std::int32_t>(n);
  radix_sort_u8(dev, g.tensor(), ok.tensor(), oi.tensor(), n, {});

  // Reference: stable sort with indices.
  std::vector<std::int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::int32_t a, std::int32_t b) {
                     return keys[static_cast<std::size_t>(a)] <
                            keys[static_cast<std::size_t>(b)];
                   });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(ok[i], keys[static_cast<std::size_t>(order[i])]) << i;
    ASSERT_EQ(oi[i], order[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RadixU8,
                         ::testing::Values<std::size_t>(1, 255, 8192, 60000),
                         [](const auto& ti) {
                           return "n" + std::to_string(ti.param);
                         });

TEST(RadixU8, HalvedPassCountRoughlyHalvesTime) {
  const std::size_t n = 1 << 20;
  Device dev;
  Rng rng(7);
  std::vector<std::uint16_t> k16(n);
  std::vector<std::uint8_t> k8(n);
  for (std::size_t i = 0; i < n; ++i) {
    k16[i] = static_cast<std::uint16_t>(rng.next_u64());
    k8[i] = static_cast<std::uint8_t>(rng.next_u64());
  }
  auto g16 = dev.upload(k16);
  auto o16 = dev.alloc<std::uint16_t>(n);
  auto g8 = dev.upload(k8);
  auto o8 = dev.alloc<std::uint8_t>(n);
  auto idx = dev.alloc<std::int32_t>(n);
  const auto r16 =
      radix_sort_u16(dev, g16.tensor(), o16.tensor(), idx.tensor(), n, {});
  const auto r8 =
      radix_sort_u8(dev, g8.tensor(), o8.tensor(), idx.tensor(), n, {});
  const double ratio = r16.time_s / r8.time_s;
  EXPECT_GT(ratio, 1.5);  // paper expects ~2x
  EXPECT_LT(ratio, 2.6);
}

}  // namespace
}  // namespace ascend::kernels
