// Functional tests of the single-core scans: ScanU (Algorithm 1),
// ScanUL1 (Algorithm 2), and the vector-only CumSum baseline, against the
// CPU reference.
#include <tuple>

#include <gtest/gtest.h>

#include "kernels/reference.hpp"
#include "kernels/scan_u.hpp"
#include "kernels/scan_ul1.hpp"
#include "kernels/vec_cumsum.hpp"
#include "test_helpers.hpp"

namespace ascend::kernels {
namespace {

using acc::Device;
using KernelFn = sim::Report (*)(Device&, acc::GlobalTensor<half>,
                                 acc::GlobalTensor<half>, std::size_t,
                                 std::size_t);

sim::Report run_vec_cumsum(Device& d, acc::GlobalTensor<half> x,
                           acc::GlobalTensor<half> y, std::size_t n,
                           std::size_t /*s*/) {
  return vec_cumsum(d, x, y, n);
}

struct Case {
  const char* name;
  KernelFn fn;
};

class SingleCoreScan
    : public ::testing::TestWithParam<std::tuple<Case, std::size_t,
                                                 std::size_t>> {};

TEST_P(SingleCoreScan, MatchesReferenceExactly) {
  const auto [c, n, s] = GetParam();
  Device dev(sim::MachineConfig::single_core());
  auto x = dev.upload(testing::exact_scan_workload(n, /*seed=*/n + s));
  auto y = dev.alloc<half>(n, half(-1.0f));
  const auto rep = c.fn(dev, x.tensor(), y.tensor(), n, s);
  const auto want = ref::inclusive_scan<half, half>(
      std::span<const half>(x.host()));
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(float(y[i]), float(want[i]))
        << c.name << " n=" << n << " s=" << s << " i=" << i;
  }
  EXPECT_GT(rep.time_s, 0.0);
}

const Case kCases[] = {
    {"scan_u", &scan_u},
    {"scan_ul1", &scan_ul1},
    {"vec_cumsum", &run_vec_cumsum},
};

INSTANTIATE_TEST_SUITE_P(
    Sizes, SingleCoreScan,
    ::testing::Combine(
        ::testing::ValuesIn(kCases),
        // Lengths: tiny, sub-tile, exact tile, misaligned multi-tile, large.
        ::testing::Values<std::size_t>(1, 7, 128, 1000, 16384, 16385, 50000,
                                       262144),
        ::testing::Values<std::size_t>(32, 128)),
    [](const auto& ti) {
      return std::string(std::get<0>(ti.param).name) + "_n" +
             std::to_string(std::get<1>(ti.param)) + "_s" +
             std::to_string(std::get<2>(ti.param));
    });

TEST(SingleCoreScanNoise, ScanUWithinRoundingTolerance) {
  const std::size_t n = 100000;
  Device dev(sim::MachineConfig::single_core());
  auto host = testing::noise_workload(n);
  auto x = dev.upload(host);
  auto y = dev.alloc<half>(n, half(0.0f));
  scan_u(dev, x.tensor(), y.tensor(), n, 128);
  // Reference in double; device rounds once per tile boundary.
  double acc = 0.0, max_abs = 0.0;
  std::vector<double> want(n);
  for (std::size_t i = 0; i < n; ++i) {
    acc += double(float(host[i]));
    want[i] = acc;
    max_abs = std::max(max_abs, std::abs(acc));
  }
  const std::size_t steps = n / 128 + 2;  // one rounding per s-row add
  for (std::size_t i = 0; i < n; i += 997) {
    testing::expect_f16_near(float(y[i]), want[i], max_abs, steps, i);
  }
}

TEST(SingleCoreScanTiming, ScanUL1FasterThanScanUFasterThanCumSum) {
  const std::size_t n = 1 << 20;
  Device dev(sim::MachineConfig::single_core());
  auto x = dev.upload(testing::exact_scan_workload(n));
  auto y = dev.alloc<half>(n, half(0.0f));
  const double t_u = scan_u(dev, x.tensor(), y.tensor(), n, 128).time_s;
  const double t_ul1 = scan_ul1(dev, x.tensor(), y.tensor(), n, 128).time_s;
  const double t_vec = vec_cumsum(dev, x.tensor(), y.tensor(), n).time_s;
  EXPECT_LT(t_ul1, t_u);
  EXPECT_LT(t_u, t_vec);
  // Paper Fig. 3 magnitudes: ScanU ~5x, ScanUL1 ~9.6x over the vector-only
  // baseline at large n. Allow generous bands; exact ratios are recorded
  // in EXPERIMENTS.md.
  EXPECT_GT(t_vec / t_u, 2.5);
  EXPECT_GT(t_vec / t_ul1, 5.0);
}

TEST(SingleCoreScanEdge, EmptyInputIsANoOp) {
  Device dev(sim::MachineConfig::single_core());
  auto x = dev.alloc<half>(1, half(3.0f));
  auto y = dev.alloc<half>(1, half(-1.0f));
  const auto rep = scan_u(dev, x.tensor(), y.tensor(), 0, 128);
  EXPECT_EQ(float(y[0]), -1.0f);  // untouched
  EXPECT_GT(rep.time_s, 0.0);
}

TEST(SingleCoreScanEdge, RejectsBadTileSize) {
  Device dev(sim::MachineConfig::single_core());
  auto x = dev.alloc<half>(16, half(0.0f));
  auto y = dev.alloc<half>(16, half(0.0f));
  EXPECT_THROW(scan_u(dev, x.tensor(), y.tensor(), 16, 100), Error);
  EXPECT_THROW(scan_ul1(dev, x.tensor(), y.tensor(), 16, 0), Error);
}

TEST(SingleCoreScanEdge, RejectsShortTensors) {
  Device dev(sim::MachineConfig::single_core());
  auto x = dev.alloc<half>(8, half(0.0f));
  auto y = dev.alloc<half>(4, half(0.0f));
  EXPECT_THROW(scan_u(dev, x.tensor(), y.tensor(), 8, 128), Error);
}

TEST(SingleCoreScanEdge, NegativeValues) {
  Device dev(sim::MachineConfig::single_core());
  std::vector<half> host = {half(5.0f), half(-3.0f), half(-3.0f), half(2.0f),
                            half(-1.0f)};
  auto x = dev.upload(host);
  auto y = dev.alloc<half>(5, half(0.0f));
  scan_ul1(dev, x.tensor(), y.tensor(), 5, 32);
  const float want[] = {5, 2, -1, 1, 0};
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(float(y[static_cast<std::size_t>(i)]), want[i]);
  }
}

}  // namespace
}  // namespace ascend::kernels
