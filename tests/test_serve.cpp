// Serving-engine tests: dynamic batching must be observationally invisible
// (bit-exact results versus direct Session calls under concurrent clients),
// admission control must reject rather than block or drop, priority lanes
// must not starve, and shutdown must resolve every future exactly once —
// including while a fault plan is armed.
#include <algorithm>
#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/ascan.hpp"
#include "serve/batcher.hpp"
#include "serve/engine.hpp"
#include "sim/executor.hpp"
#include "test_helpers.hpp"

namespace ascend {
namespace {

using ascan::RetryPolicy;
using ascan::Session;
using ascan::SortAlgo;
using namespace ascan::serve;
using testing::exact_scan_workload;

sim::MachineConfig cfg_with(sim::ExecutorMode mode) {
  auto cfg = sim::MachineConfig::ascend_910b4();
  cfg.executor = mode;
  return cfg;
}

/// 0/1 segment-start flags with a forced start at 0 (matches the serving
/// engine's request-boundary normalisation, so direct calls are comparable).
std::vector<std::int8_t> seg_flags(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  auto f = rng.mask_i8(n, 0.05);
  f[0] = 1;
  return f;
}

// ---------------------------------------------------------------------------
// Satellite: batch-API edge cases on the Session surface.

TEST(BatchApiEdgeCases, CumsumBatchedRejectsInvalidArguments) {
  Session s;
  EXPECT_THROW(s.cumsum_batched({}, 0, 0), Error);  // empty
  const auto x = exact_scan_workload(64);
  EXPECT_THROW(s.cumsum_batched(x, 0, 64), Error);   // batch = 0
  EXPECT_THROW(s.cumsum_batched(x, 64, 0), Error);   // len = 0
  EXPECT_THROW(s.cumsum_batched(x, 3, 64), Error);   // shape mismatch
  EXPECT_THROW(s.cumsum_batched(x, 1, 64, 100), Error);  // invalid tile
}

TEST(BatchApiEdgeCases, CumsumBatchedBatchOfOneMatchesScan) {
  Session s;
  const auto x = exact_scan_workload(300);  // deliberately not tile-aligned
  const auto batched = s.cumsum_batched(x, 1, x.size());
  const auto direct = s.cumsum_f16(x, {.algo = ascan::ScanAlgo::ScanU});
  ASSERT_EQ(batched.values.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(static_cast<float>(batched.values[i]),
              static_cast<float>(direct.values[i]))
        << "index " << i;
  }
}

TEST(BatchApiEdgeCases, SegmentedCumsumSingleElementSegments) {
  Session s;
  const auto x = exact_scan_workload(200);
  std::vector<std::int8_t> flags(x.size(), 1);  // every element is a segment
  const auto r = s.segmented_cumsum(x, flags);
  ASSERT_EQ(r.values.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(r.values[i], static_cast<float>(x[i])) << "index " << i;
  }
  EXPECT_THROW(s.segmented_cumsum(x, std::vector<std::int8_t>(3, 1)), Error);
}

TEST(BatchApiEdgeCases, TopPSampleBatchRejectsInvalidArguments) {
  Session s;
  Rng rng(7);
  const auto probs = rng.token_probs_f16(256);
  const std::vector<double> u1{0.5};
  EXPECT_THROW(s.top_p_sample_batch({}, 0, 0, 0.9, {}), Error);
  EXPECT_THROW(s.top_p_sample_batch(probs, 0, 256, 0.9, {}), Error);
  EXPECT_THROW(s.top_p_sample_batch(probs, 1, 0, 0.9, u1), Error);
  EXPECT_THROW(s.top_p_sample_batch(probs, 2, 256, 0.9, u1), Error);  // shape
  EXPECT_THROW(s.top_p_sample_batch(probs, 1, 256, 0.0, u1), Error);  // p
  EXPECT_THROW(s.top_p_sample_batch(probs, 1, 256, 1.5, u1), Error);  // p
  EXPECT_THROW(s.top_p_sample_batch(probs, 1, 256, 0.9, {1.0}), Error);  // u
  EXPECT_THROW(s.top_p_sample_batch(probs, 1, 256, 0.9, {0.1, 0.2}), Error);
}

TEST(BatchApiEdgeCases, TopPSampleBatchOfOneMatchesSingle) {
  Session s;
  Rng rng(11);
  const auto probs = rng.token_probs_f16(512);
  const auto single = s.top_p_sample(probs, 0.9, 0.37);
  const auto batched =
      s.top_p_sample_batch(probs, 1, probs.size(), 0.9, {0.37});
  ASSERT_EQ(batched.tokens.size(), 1u);
  EXPECT_EQ(batched.tokens[0], single.index);
}

// ---------------------------------------------------------------------------
// Satellite: core composition hooks used by the serving layer.

TEST(SessionHooks, RunResilientAggregatesIntoTotal) {
  Session s;
  const auto x = exact_scan_workload(128);
  const double before = s.total().time_s;
  const auto rep = s.run_resilient("composed", [&] {
    ascan::Report r;
    r += s.cumsum_batched(x, 1, x.size()).report;
    r += s.cumsum_batched(x, 1, x.size()).report;
    return r;
  });
  EXPECT_EQ(rep.launches, 2);
  EXPECT_GT(s.total().time_s, before);
}

TEST(SessionHooks, ScopedRetryPolicyRestores) {
  Session s;
  s.set_retry_policy({.max_attempts = 2});
  {
    ascan::ScopedRetryPolicy scope(s, {.max_attempts = 7});
    EXPECT_EQ(s.retry_policy().max_attempts, 7);
  }
  EXPECT_EQ(s.retry_policy().max_attempts, 2);
}

// ---------------------------------------------------------------------------
// Batcher unit tests (no threads): lane order, aging, grouping.

Pending make_pending(Request req, Clock::time_point enq, std::uint64_t seq) {
  Pending p;
  p.req = std::move(req);
  p.enqueued = enq;
  p.seq = seq;
  return p;
}

TEST(Batcher, InteractiveLaneFirstUnlessBulkAged) {
  const BatchPolicy policy{.max_batch = 4, .max_wait_s = 1e-3,
                           .aging_factor = 8.0};
  const auto now = Clock::now();
  const auto x = exact_scan_workload(32);

  Batcher q;
  q.push(make_pending(Request::cumsum(x, 128, false, Priority::Bulk),
                      now - std::chrono::milliseconds(1), 0));
  q.push(make_pending(Request::cumsum(x), now, 1));
  // Bulk is older but not aged past 8 ms: interactive leads.
  auto b = q.pop_batch(policy, now);
  ASSERT_EQ(b.size(), 2u);  // same GroupKey: both coalesce...
  EXPECT_EQ(b[0].seq, 1u);  // ...but the interactive one leads the batch

  Batcher q2;
  q2.push(make_pending(Request::cumsum(x, 128, false, Priority::Bulk),
                       now - std::chrono::milliseconds(100), 0));
  q2.push(make_pending(Request::cumsum(x, 64), now, 1));  // different key
  // Bulk aged past aging_factor * max_wait: it leads despite its lane.
  auto b2 = q2.pop_batch(policy, now);
  ASSERT_EQ(b2.size(), 1u);
  EXPECT_EQ(b2[0].seq, 0u);
}

TEST(Batcher, GroupsByKeyAcrossLanesFifo) {
  const BatchPolicy policy{.max_batch = 8, .max_wait_s = 1.0};
  const auto now = Clock::now();
  const auto x = exact_scan_workload(32);

  Batcher q;
  q.push(make_pending(Request::cumsum(x), now, 0));
  q.push(make_pending(Request::cumsum(x, 64), now, 1));  // different tile
  q.push(make_pending(Request::cumsum(x, 128, false, Priority::Bulk), now, 2));
  q.push(make_pending(Request::cumsum(x), now, 3));

  EXPECT_FALSE(q.full_batch_ready(policy, now));  // 3 of key, want 8
  auto b = q.pop_batch(policy, now);
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[0].seq, 0u);
  EXPECT_EQ(b[1].seq, 3u);  // interactive lane drained first, FIFO
  EXPECT_EQ(b[2].seq, 2u);
  EXPECT_EQ(q.size(), 1u);  // the tile-64 request remains
}

TEST(Batcher, SortIsNeverCoalesced) {
  const BatchPolicy policy{.max_batch = 8, .max_wait_s = 1.0};
  const auto now = Clock::now();
  const auto x = exact_scan_workload(32);
  Batcher q;
  q.push(make_pending(Request::sort(x), now, 0));
  q.push(make_pending(Request::sort(x), now, 1));
  EXPECT_TRUE(q.full_batch_ready(policy, now));  // singleton: nothing to wait
  EXPECT_EQ(q.pop_batch(policy, now).size(), 1u);
  EXPECT_EQ(q.size(), 1u);
}

// ---------------------------------------------------------------------------
// Tentpole: concurrent serving is bit-exact versus direct Session calls.

struct Expected {
  Request req;
  Response direct;  ///< reference computed on a plain Session
};

Expected make_case(std::size_t i, Session& ref) {
  Rng rng(1000 + i);
  Expected e;
  switch (i % 4) {
    case 0: {
      // Mixed lengths exercise the zero-padding path.
      const std::size_t n = 64 + 32 * (i % 5);
      auto x = exact_scan_workload(n, 10 + i);
      auto r = ref.cumsum_batched(x, 1, n);
      e.direct.values_f16 = std::move(r.values);
      e.req = Request::cumsum(std::move(x));
      break;
    }
    case 1: {
      const std::size_t n = 96 + 16 * (i % 3);
      auto x = exact_scan_workload(n, 20 + i);
      auto f = seg_flags(n, 30 + i);
      auto r = ref.segmented_cumsum(x, f);
      e.direct.values_f32 = std::move(r.values);
      e.req = Request::segmented_cumsum(std::move(x), std::move(f));
      break;
    }
    case 2: {
      auto x = rng.uniform_f16(128 + (i % 4) * 64, -100.0, 100.0);
      auto r = ref.sort(x, i % 8 == 2);
      e.direct.sorted_values = std::move(r.values);
      e.direct.indices = std::move(r.indices);
      e.req = Request::sort(std::move(x), i % 8 == 2);
      break;
    }
    default: {
      auto probs = rng.token_probs_f16(256);
      const double u = rng.next_double();
      e.direct.token = ref.top_p_sample(probs, 0.9, u).index;
      e.req = Request::top_p(std::move(probs), 0.9, u);
      break;
    }
  }
  return e;
}

void expect_matches(const Response& got, const Expected& e, std::size_t i) {
  ASSERT_EQ(got.status, Status::Ok) << "case " << i << ": " << got.reason;
  ASSERT_EQ(got.values_f16.size(), e.direct.values_f16.size()) << "case " << i;
  for (std::size_t j = 0; j < got.values_f16.size(); ++j) {
    ASSERT_EQ(static_cast<float>(got.values_f16[j]),
              static_cast<float>(e.direct.values_f16[j]))
        << "case " << i << " index " << j;
  }
  ASSERT_EQ(got.values_f32, e.direct.values_f32) << "case " << i;
  ASSERT_EQ(got.sorted_values.size(), e.direct.sorted_values.size());
  for (std::size_t j = 0; j < got.sorted_values.size(); ++j) {
    ASSERT_EQ(static_cast<float>(got.sorted_values[j]),
              static_cast<float>(e.direct.sorted_values[j]))
        << "case " << i << " index " << j;
  }
  ASSERT_EQ(got.indices, e.direct.indices) << "case " << i;
  ASSERT_EQ(got.token, e.direct.token) << "case " << i;
}

void run_bit_exact(sim::ExecutorMode mode) {
  Session ref(cfg_with(mode));
  constexpr std::size_t kCases = 24;
  constexpr int kClients = 4;
  std::vector<Expected> cases;
  cases.reserve(kCases);
  for (std::size_t i = 0; i < kCases; ++i) cases.push_back(make_case(i, ref));

  Engine engine({.policy = {.max_batch = 8, .max_wait_s = 300e-6},
                 .machine = cfg_with(mode)});
  std::vector<std::future<Response>> futs(kCases);
  std::vector<std::thread> clients;
  std::atomic<std::size_t> next{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < kCases;
           i = next.fetch_add(1)) {
        futs[i] = engine.submit(cases[i].req);  // copies the request
      }
    });
  }
  for (auto& t : clients) t.join();
  for (std::size_t i = 0; i < kCases; ++i) {
    expect_matches(futs[i].get(), cases[i], i);
  }
  engine.shutdown(ShutdownMode::Drain);
  const auto m = engine.metrics();
  EXPECT_EQ(m.completed, kCases);
  EXPECT_EQ(m.failed + m.cancelled + m.rejected_capacity, 0u);
}

TEST(ServeEngine, BitExactVersusDirectSessionSpawn) {
  run_bit_exact(sim::ExecutorMode::Spawn);
}

TEST(ServeEngine, BitExactVersusDirectSessionPool) {
  run_bit_exact(sim::ExecutorMode::Pool);
}

TEST(ServeEngine, BatchingActuallyCoalesces) {
  // 16 same-shape scans submitted ahead of the 200 ms deadline must serve
  // as (close to) one launch, not 16.
  Engine engine({.policy = {.max_batch = 16, .max_wait_s = 0.2}});
  const auto x = exact_scan_workload(128);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 16; ++i) futs.push_back(engine.submit(Request::cumsum(x)));
  for (auto& f : futs) EXPECT_TRUE(f.get().ok());
  engine.shutdown(ShutdownMode::Drain);
  const auto m = engine.metrics();
  EXPECT_EQ(m.completed, 16u);
  EXPECT_GT(m.avg_batch_occupancy, 1.5);
  EXPECT_GE(m.max_batch_observed, 8u);
}

// ---------------------------------------------------------------------------
// Admission control: bounded queue, reject-with-reason, interactive reserve.

TEST(ServeEngine, BackpressureRejectsWithReason) {
  // A 200 ms batching deadline holds the worker off the queue while we
  // overfill it from this thread.
  Engine engine({.policy = {.max_batch = 64, .max_wait_s = 0.2},
                 .max_queue = 8,
                 .interactive_reserve = 2});
  const auto x = exact_scan_workload(64);
  std::vector<std::future<Response>> admitted;
  std::size_t rejected = 0;
  for (int i = 0; i < 10; ++i) {
    auto f = engine.submit(
        Request::cumsum(x, 128, false, Priority::Bulk));
    if (f.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
      const auto r = f.get();
      ASSERT_EQ(r.status, Status::Rejected);
      EXPECT_NE(r.reason.find("queue full"), std::string::npos) << r.reason;
      rejected++;
    } else {
      admitted.push_back(std::move(f));
    }
  }
  EXPECT_EQ(admitted.size(), 6u);  // max_queue - interactive_reserve
  EXPECT_EQ(rejected, 4u);

  // The reserve keeps the interactive lane open under bulk overload.
  auto hi = engine.submit(Request::cumsum(x));
  auto hi2 = engine.submit(Request::cumsum(x));
  auto hi3 = engine.submit(Request::cumsum(x));  // now the queue is truly full
  EXPECT_EQ(hi3.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(hi3.get().status, Status::Rejected);

  engine.shutdown(ShutdownMode::Drain);
  for (auto& f : admitted) EXPECT_TRUE(f.get().ok());
  EXPECT_TRUE(hi.get().ok());
  EXPECT_TRUE(hi2.get().ok());
  const auto m = engine.metrics();
  EXPECT_EQ(m.rejected_capacity, 5u);
  EXPECT_EQ(m.completed, 8u);
}

TEST(ServeEngine, InvalidRequestsRejectImmediately) {
  Engine engine;
  EXPECT_EQ(engine.submit(Request::cumsum({})).get().status, Status::Rejected);
  const auto x = exact_scan_workload(64);
  EXPECT_EQ(engine.submit(Request::cumsum(x, 100)).get().status,
            Status::Rejected);  // invalid tile
  auto bad_flags = Request::segmented_cumsum(x, std::vector<std::int8_t>(3));
  EXPECT_EQ(engine.submit(bad_flags).get().status, Status::Rejected);
  EXPECT_EQ(engine.submit(Request::top_p(x, 0.0, 0.5)).get().status,
            Status::Rejected);
  EXPECT_EQ(engine.submit(Request::top_p(x, 0.9, 1.0)).get().status,
            Status::Rejected);
  const auto m = engine.metrics();
  EXPECT_EQ(m.rejected_invalid, 5u);
  EXPECT_EQ(m.admitted, 0u);
}

// ---------------------------------------------------------------------------
// Satellite: deterministic shutdown — no dangling futures, ever.

TEST(ServeEngine, ShutdownDrainCompletesEverything) {
  Engine engine({.policy = {.max_batch = 8, .max_wait_s = 0.2}});
  const auto x = exact_scan_workload(128);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 12; ++i) {
    futs.push_back(engine.submit(Request::cumsum(x)));
  }
  engine.shutdown(ShutdownMode::Drain);
  EXPECT_TRUE(engine.stopped());
  for (auto& f : futs) EXPECT_TRUE(f.get().ok());
  EXPECT_EQ(engine.metrics().completed, 12u);

  // Idempotent, and post-shutdown submissions reject.
  engine.shutdown(ShutdownMode::Cancel);
  auto late = engine.submit(Request::cumsum(x));
  const auto r = late.get();
  EXPECT_EQ(r.status, Status::Rejected);
  EXPECT_NE(r.reason.find("shutting down"), std::string::npos);
}

TEST(ServeEngine, ShutdownCancelResolvesQueuedFutures) {
  // A far deadline keeps requests queued; cancel must resolve them all.
  Engine engine({.policy = {.max_batch = 64, .max_wait_s = 1.0}});
  const auto x = exact_scan_workload(128);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 12; ++i) {
    futs.push_back(engine.submit(Request::cumsum(x)));
  }
  engine.shutdown(ShutdownMode::Cancel);
  std::size_t completed = 0, cancelled = 0;
  for (auto& f : futs) {
    const auto r = f.get();  // must not block: every future is resolved
    ASSERT_TRUE(r.status == Status::Ok || r.status == Status::Cancelled);
    (r.ok() ? completed : cancelled)++;
  }
  EXPECT_EQ(completed + cancelled, 12u);
  EXPECT_GT(cancelled, 0u);
  const auto m = engine.metrics();
  EXPECT_EQ(m.cancelled, cancelled);
  EXPECT_EQ(m.completed, completed);
}

TEST(ServeEngine, DestructorDrains) {
  const auto x = exact_scan_workload(128);
  std::future<Response> f;
  {
    Engine engine({.policy = {.max_batch = 8, .max_wait_s = 0.2}});
    f = engine.submit(Request::cumsum(x));
  }
  EXPECT_TRUE(f.get().ok());
}

// ---------------------------------------------------------------------------
// Satellite: shutdown and serving while a FaultPlan is armed (PR 1 interop).

TEST(ServeEngine, ServesThroughTransientFaultWithRetry) {
  Engine engine({.policy = {.max_batch = 8, .max_wait_s = 100e-6},
                 .retry = {.max_attempts = 3},
                 .fault_plan = ascan::FaultPlan::one_transient_mte(0)});
  const auto x = exact_scan_workload(128);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 8; ++i) futs.push_back(engine.submit(Request::cumsum(x)));
  for (auto& f : futs) {
    const auto r = f.get();
    EXPECT_TRUE(r.ok()) << r.reason;
  }
  engine.shutdown(ShutdownMode::Drain);
  const auto m = engine.metrics();
  EXPECT_EQ(m.completed, 8u);
  EXPECT_GE(m.sim_retries, 1u);  // the injected fault was retried, not fatal
}

TEST(ServeEngine, UnrecoverableFaultFailsTypedNotHangs) {
  ascan::FaultPlan plan;
  plan.ecc_double_rate = 1.0;  // uncorrectable on every transfer, no retry
  Engine engine({.policy = {.max_batch = 4, .max_wait_s = 100e-6},
                 .retry = {.max_attempts = 2},
                 .fault_plan = plan});
  const auto x = exact_scan_workload(128);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 4; ++i) futs.push_back(engine.submit(Request::cumsum(x)));
  for (auto& f : futs) {
    const auto r = f.get();
    EXPECT_EQ(r.status, Status::Failed);
    EXPECT_FALSE(r.reason.empty());
  }
  engine.shutdown(ShutdownMode::Drain);  // must terminate despite the faults
  const auto m = engine.metrics();
  EXPECT_EQ(m.failed, 4u);
  // Abandoned launches are counted, with the traffic their faults burned
  // folded into the sim_* counters (not silently dropped).
  EXPECT_GE(m.failed_batches, 1u);
}

// ---------------------------------------------------------------------------
// Metrics export.

TEST(ServeEngine, MetricsJsonHasTheDocumentedSchema) {
  Engine engine({.policy = {.max_batch = 8, .max_wait_s = 100e-6}});
  const auto x = exact_scan_workload(128);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 6; ++i) futs.push_back(engine.submit(Request::cumsum(x)));
  for (auto& f : futs) EXPECT_TRUE(f.get().ok());
  engine.shutdown(ShutdownMode::Drain);

  const std::string j = engine.metrics_json();
  for (const char* key :
       {"\"admission\"", "\"completed_by_kind\"", "\"batching\"",
        "\"latency\"", "\"queue\"", "\"execute\"", "\"total\"", "\"p50_us\"",
        "\"p95_us\"", "\"p99_us\"", "\"simulated\"",
        "\"bandwidth_utilization\"", "\"continuation_admits\"",
        "\"failed_batches\"", "\"streaming\"", "\"chunk_latency\"",
        "\"steps\"", "\"slo\"", "\"deadline_misses\"", "\"preemptions\"",
        "\"preempted_tiles_resumed\"", "\"tier_latency\"", "\"gold\"",
        "\"silver\"", "\"bronze\"", "\"rejected_quota\""}) {
    EXPECT_NE(j.find(key), std::string::npos) << "missing " << key;
  }
  const auto m = engine.metrics();
  EXPECT_EQ(m.total_latency.count(), 6u);
  EXPECT_GT(m.total_latency.percentile(0.5), 0.0);
  EXPECT_GE(m.total_latency.max_s(), m.total_latency.percentile(0.5) / 2.0);
  EXPECT_GT(m.sim_time_s, 0.0);
  EXPECT_GT(m.sim_bandwidth_utilization, 0.0);
}

TEST(LatencyHistogram, PercentilesAreBucketUpperBounds) {
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.add(10e-6);
  h.add(10e-3);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_LE(h.percentile(0.5), 16e-6 + 1e-12);   // within 10 µs's bucket
  EXPECT_GE(h.percentile(0.995), 10e-3 - 1e-12);  // the outlier
  EXPECT_DOUBLE_EQ(h.max_s(), 10e-3);
}

// ---------------------------------------------------------------------------
// Tentpole: stepwise (tile-granular) launches on the Session surface.
// Manually driving begin/step/finish with host-side carry threading must
// reproduce the monolithic calls bit-for-bit on integer-valued workloads.

TEST(SessionStepwise, CumsumStepsMatchMonolithic) {
  Session s;
  const auto x = exact_scan_workload(1000, 40);  // not a multiple of 16*16
  const auto want = s.cumsum_batched(x, 1, x.size(), 16);
  auto ls = s.cumsum_batched_begin(16);
  std::vector<half> got;
  half carry(0.0f);
  const std::size_t l = 16 * 16;
  for (std::size_t off = 0; off < x.size();) {
    const std::size_t take = std::min(l, x.size() - off);
    const auto first = x.begin() + static_cast<std::ptrdiff_t>(off);
    const std::vector<half> slice(first,
                                  first + static_cast<std::ptrdiff_t>(take));
    const auto r = s.cumsum_batched_step(ls, slice, 1, take, {carry});
    got.insert(got.end(), r.values.begin(), r.values.end());
    carry = got.back();
    off += take;
  }
  const auto rep = s.cumsum_batched_finish(ls);
  EXPECT_EQ(rep.steps, 4);  // ceil(1000 / 256)
  EXPECT_GT(rep.launches, 0);
  ASSERT_EQ(got.size(), want.values.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(static_cast<float>(got[i]),
              static_cast<float>(want.values[i]))
        << "index " << i;
  }
}

TEST(SessionStepwise, SegmentedStepsMatchMonolithic) {
  Session s;
  const std::size_t n = 9000;  // 3 steps at the engine's 4096-element stride
  const auto x = exact_scan_workload(n, 41);
  const auto f = seg_flags(n, 42);
  const auto want = s.segmented_cumsum(x, f);
  auto ls = s.segmented_cumsum_begin();
  std::vector<float> got;
  float carry = 0.0f;
  const std::size_t kStep = 4096;
  for (std::size_t off = 0; off < n;) {
    const std::size_t take = std::min(kStep, n - off);
    const auto xb = x.begin() + static_cast<std::ptrdiff_t>(off);
    const auto fb = f.begin() + static_cast<std::ptrdiff_t>(off);
    const std::vector<half> xs(xb, xb + static_cast<std::ptrdiff_t>(take));
    const std::vector<std::int8_t> fs(fb,
                                      fb + static_cast<std::ptrdiff_t>(take));
    const auto r = s.segmented_cumsum_step(ls, xs, fs, {take}, {carry});
    got.insert(got.end(), r.values.begin(), r.values.end());
    carry = got.back();
    off += take;
  }
  const auto rep = s.segmented_cumsum_finish(ls);
  EXPECT_EQ(rep.steps, 3);
  ASSERT_EQ(got, want.values);  // fp32, integer-valued: exact equality
}

TEST(SessionStepwise, TopPStepMatchesSingle) {
  Session s;
  Rng rng(77);
  const auto probs = rng.token_probs_f16(512);
  const auto want = s.top_p_sample(probs, 0.9, 0.37);
  auto ls = s.top_p_begin(0.9);
  const auto got = s.top_p_step(ls, probs, 0.37);
  const auto rep = s.top_p_finish(ls);
  EXPECT_EQ(got.index, want.index);
  EXPECT_EQ(rep.steps, 1);
}

TEST(SessionStepwise, MisuseThrows) {
  Session s;
  Session::LaunchStream closed;  // never begun
  const auto x = exact_scan_workload(64);
  EXPECT_THROW(s.cumsum_batched_step(closed, x, 1, 64, {half(0.0f)}), Error);
  EXPECT_THROW(s.cumsum_batched_finish(closed), Error);
  auto ls = s.cumsum_batched_begin(16);
  // A step is at most one l-tile (16*16 = 256) long per row.
  EXPECT_THROW(s.cumsum_batched_step(ls, x, 1, 300, {half(0.0f)}), Error);
  s.cumsum_batched_finish(ls);
  EXPECT_THROW(s.cumsum_batched_finish(ls), Error);  // double finish
}

// ---------------------------------------------------------------------------
// Tentpole: streamed per-tile results through the Engine. Chunks must be
// bit-exact prefixes of the final payload under both host executors.

void run_streaming_prefixes(sim::ExecutorMode mode) {
  Engine engine({.policy = {.max_batch = 4, .max_wait_s = 100e-6},
                 .machine = cfg_with(mode)});
  const auto x = exact_scan_workload(2048, 50);  // 8 steps at tile 16
  Request req = Request::cumsum(x, 16);
  std::mutex mu;
  std::vector<StreamChunk> chunks;
  req.on_chunk = [&](const StreamChunk& c) {
    std::lock_guard<std::mutex> lk(mu);
    chunks.push_back(c);
  };
  const auto resp = engine.submit(std::move(req)).get();
  ASSERT_TRUE(resp.ok()) << resp.reason;
  engine.shutdown(ShutdownMode::Drain);

  std::lock_guard<std::mutex> lk(mu);
  ASSERT_GE(chunks.size(), 2u);  // genuinely incremental delivery
  EXPECT_EQ(resp.chunks_streamed, chunks.size());
  std::size_t off = 0;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].kind, OpKind::Cumsum);
    EXPECT_EQ(chunks[i].offset, off) << "chunk " << i;
    EXPECT_EQ(chunks[i].last, i + 1 == chunks.size()) << "chunk " << i;
    EXPECT_EQ(chunks[i].launch_id, resp.launch_id);
    ASSERT_LE(off + chunks[i].values_f16.size(), resp.values_f16.size());
    for (std::size_t j = 0; j < chunks[i].values_f16.size(); ++j) {
      ASSERT_EQ(static_cast<float>(chunks[i].values_f16[j]),
                static_cast<float>(resp.values_f16[off + j]))
          << "chunk " << i << " element " << j;
    }
    off += chunks[i].values_f16.size();
  }
  EXPECT_EQ(off, resp.values_f16.size());  // chunks tile the full payload
  EXPECT_GT(resp.timing.first_chunk_s, 0.0);
  EXPECT_LE(resp.timing.first_chunk_s, resp.timing.total_s);
  const auto m = engine.metrics();
  EXPECT_EQ(m.stream_chunks, chunks.size());
  EXPECT_EQ(m.chunk_latency.count(), chunks.size());
  EXPECT_GE(m.sim_steps, static_cast<int>(chunks.size()));
}

TEST(ServeStreaming, ChunksAreBitExactPrefixesSpawn) {
  run_streaming_prefixes(sim::ExecutorMode::Spawn);
}

TEST(ServeStreaming, ChunksAreBitExactPrefixesPool) {
  run_streaming_prefixes(sim::ExecutorMode::Pool);
}

TEST(ServeStreaming, SegmentedChunksTileTheFinalPayload) {
  Engine engine({.policy = {.max_batch = 4, .max_wait_s = 100e-6}});
  const std::size_t n = 9000;  // 3 chunks at the 4096-element step stride
  Request req = Request::segmented_cumsum(exact_scan_workload(n, 51),
                                          seg_flags(n, 52));
  std::mutex mu;
  std::vector<StreamChunk> chunks;
  req.on_chunk = [&](const StreamChunk& c) {
    std::lock_guard<std::mutex> lk(mu);
    chunks.push_back(c);
  };
  const auto resp = engine.submit(std::move(req)).get();
  ASSERT_TRUE(resp.ok()) << resp.reason;
  engine.shutdown(ShutdownMode::Drain);

  std::lock_guard<std::mutex> lk(mu);
  ASSERT_EQ(chunks.size(), 3u);
  std::vector<float> concat;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].kind, OpKind::SegmentedCumsum);
    EXPECT_EQ(chunks[i].offset, concat.size()) << "chunk " << i;
    concat.insert(concat.end(), chunks[i].values_f32.begin(),
                  chunks[i].values_f32.end());
  }
  EXPECT_EQ(concat, resp.values_f32);  // fp32: exact vector equality
  EXPECT_TRUE(chunks.back().last);
}

TEST(ServeStreaming, TopPStreamsOneTerminalChunk) {
  Engine engine({.policy = {.max_batch = 4, .max_wait_s = 100e-6}});
  Rng rng(78);
  Request req = Request::top_p(rng.token_probs_f16(512), 0.9, 0.37);
  std::mutex mu;
  std::vector<StreamChunk> chunks;
  req.on_chunk = [&](const StreamChunk& c) {
    std::lock_guard<std::mutex> lk(mu);
    chunks.push_back(c);
  };
  const auto resp = engine.submit(std::move(req)).get();
  ASSERT_TRUE(resp.ok()) << resp.reason;
  engine.shutdown(ShutdownMode::Drain);
  std::lock_guard<std::mutex> lk(mu);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].token, resp.token);
  EXPECT_TRUE(chunks[0].last);
}

TEST(ServeStreaming, StolenBatchesDoNotStream) {
  // A stolen batch runs as an indivisible throughput unit: the thief must
  // neither stream nor continuation-admit (see serve::Cluster docs). The
  // future still resolves the full payload.
  Session ref;
  const auto x = exact_scan_workload(512, 53);
  const auto want = ref.cumsum_batched(x, 1, x.size(), 16);

  auto stash = std::make_shared<std::vector<Pending>>();
  std::atomic<int> chunk_calls{0};
  std::promise<Response> prom;
  auto fut = prom.get_future();
  {
    Pending p;
    p.req = Request::cumsum(x, 16, false, Priority::Bulk);
    p.req.on_chunk = [&](const StreamChunk&) { ++chunk_calls; };
    p.promise = std::move(prom);
    p.enqueued = Clock::now();
    stash->push_back(std::move(p));
  }
  EngineOptions opt;
  opt.policy = {.max_batch = 4, .max_wait_s = 100e-6};
  opt.steal_source = [stash] {
    std::vector<Pending> v;
    std::swap(v, *stash);
    return v;
  };
  Engine thief(std::move(opt));
  const auto resp = fut.get();
  thief.shutdown(ShutdownMode::Drain);
  ASSERT_TRUE(resp.ok()) << resp.reason;
  EXPECT_EQ(chunk_calls.load(), 0);
  EXPECT_EQ(resp.chunks_streamed, 0u);
  ASSERT_EQ(resp.values_f16.size(), want.values.size());
  for (std::size_t i = 0; i < want.values.size(); ++i) {
    ASSERT_EQ(static_cast<float>(resp.values_f16[i]),
              static_cast<float>(want.values[i]))
        << "index " << i;
  }
  EXPECT_GE(thief.metrics().steals, 1u);
}

// ---------------------------------------------------------------------------
// Tentpole: continuous batching — a request submitted while a compatible
// stepwise launch is in flight joins that launch between steps, and its
// result is identical to a standalone submit.

TEST(ServeContinuation, MidLaunchAdmissionMatchesStandalone) {
  Session ref;
  const auto x1 = exact_scan_workload(4096, 60);  // 16 steps at tile 16
  const auto x2 = exact_scan_workload(700, 61);
  const auto want2 = ref.cumsum_batched(x2, 1, x2.size(), 16);

  Engine engine({.policy = {.max_batch = 8, .max_wait_s = 100e-6}});
  std::promise<std::future<Response>> second;
  std::atomic<bool> submitted{false};
  Request r1 = Request::cumsum(x1, 16);
  // submit() from inside on_chunk is legal (no engine lock held) and, with
  // a single worker, lands while the launch is mid-flight: the next step
  // boundary must admit it into the same launch.
  r1.on_chunk = [&](const StreamChunk&) {
    if (!submitted.exchange(true)) {
      second.set_value(engine.submit(Request::cumsum(x2, 16)));
    }
  };
  auto f1 = engine.submit(std::move(r1));
  const auto resp2 = second.get_future().get().get();
  const auto resp1 = f1.get();
  engine.shutdown(ShutdownMode::Drain);
  ASSERT_TRUE(resp1.ok()) << resp1.reason;
  ASSERT_TRUE(resp2.ok()) << resp2.reason;
  EXPECT_EQ(resp2.launch_id, resp1.launch_id);  // joined the in-flight launch
  ASSERT_EQ(resp2.values_f16.size(), want2.values.size());
  for (std::size_t i = 0; i < want2.values.size(); ++i) {
    ASSERT_EQ(static_cast<float>(resp2.values_f16[i]),
              static_cast<float>(want2.values[i]))
        << "index " << i;
  }
  EXPECT_GE(engine.metrics().continuation_admits, 1u);
}

TEST(ServeContinuation, DisabledPolicyKeepsBoundaryBatching) {
  const auto x1 = exact_scan_workload(4096, 62);
  const auto x2 = exact_scan_workload(700, 63);
  Engine engine({.policy = {.max_batch = 8, .max_wait_s = 100e-6,
                            .continuous = false}});
  std::promise<std::future<Response>> second;
  std::atomic<bool> submitted{false};
  Request r1 = Request::cumsum(x1, 16);
  r1.on_chunk = [&](const StreamChunk&) {
    if (!submitted.exchange(true)) {
      second.set_value(engine.submit(Request::cumsum(x2, 16)));
    }
  };
  auto f1 = engine.submit(std::move(r1));
  const auto resp2 = second.get_future().get().get();
  const auto resp1 = f1.get();
  engine.shutdown(ShutdownMode::Drain);
  ASSERT_TRUE(resp1.ok()) << resp1.reason;
  ASSERT_TRUE(resp2.ok()) << resp2.reason;
  EXPECT_NE(resp2.launch_id, resp1.launch_id);  // waited for its own launch
  EXPECT_EQ(engine.metrics().continuation_admits, 0u);
}

}  // namespace
}  // namespace ascend
