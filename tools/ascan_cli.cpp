// ascan_cli — command-line driver for the library: run any operator on
// synthetic workloads, print the simulated execution report, optionally
// dump a chrome://tracing timeline of the launch schedule.
//
//   ascan_cli info
//   ascan_cli scan  --n 1048576 --algo mcscan|scanu|scanul1|vec [--s 128]
//                   [--blocks 20] [--trace out.json]
//   ascan_cli sort  --n 1048576 --algo radix|baseline
//   ascan_cli topp  --n 32000 --p 0.9 --u 0.25 [--baseline]
//   ascan_cli reduce --n 1048576 --algo cube|vector
//   ascan_cli chaos  [--plans 60] [--n 4096] [--seed0 1] [--retries 3]
//                    [--exclusions 1]
//   ascan_cli serve-demo [--requests 64] [--clients 4] [--batch 16]
//                        [--wait-us 500] [--queue 256]
//                        [--deadline-us 0] [--tier gold|silver|bronze]
//   ascan_cli cluster-demo [--devices 4] [--requests 96] [--clients 4]
//                          [--batch 8] [--wait-us 200] [--queue 512]
//                          [--no-steal]
//   ascan_cli health-demo [--devices 4] [--requests 160] [--clients 4]
//                         [--batch 4] [--hold-us 1500] [--dead-launch 4]
#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <iostream>
#include <map>
#include <string>

#include <thread>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/ascan.hpp"
#include "serve/cluster.hpp"
#include "serve/engine.hpp"
#include "kernels/mcscan.hpp"
#include "kernels/radix_sort.hpp"
#include "kernels/reduce.hpp"
#include "kernels/sampling.hpp"
#include "kernels/scan_u.hpp"
#include "kernels/scan_ul1.hpp"
#include "kernels/sort_baseline.hpp"
#include "kernels/vec_cumsum.hpp"
#include "sim/trace_export.hpp"

namespace {

using namespace ascend;
using ascend::format_bytes;
using ascend::format_time_s;

struct Args {
  std::string command;
  std::map<std::string, std::string> kv;
  bool flag(const std::string& k) const { return kv.count(k) > 0; }
  std::string str(const std::string& k, const std::string& dflt) const {
    auto it = kv.find(k);
    return it == kv.end() ? dflt : it->second;
  }
  std::size_t num(const std::string& k, std::size_t dflt) const {
    auto it = kv.find(k);
    return it == kv.end() ? dflt : std::stoull(it->second);
  }
  double real(const std::string& k, double dflt) const {
    auto it = kv.find(k);
    return it == kv.end() ? dflt : std::stod(it->second);
  }
};

Args parse(int argc, char** argv) {
  Args a;
  if (argc >= 2) a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) {
      key = key.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        a.kv[key] = argv[++i];
      } else {
        a.kv[key] = "1";
      }
    }
  }
  return a;
}

void print_report(const char* what, const sim::Report& rep, std::size_t n,
                  std::uint64_t useful_bytes) {
  std::printf("%s: n=%zu\n", what, n);
  std::printf("  simulated time : %s\n", format_time_s(rep.time_s).c_str());
  std::printf("  launches       : %d\n", rep.launches);
  std::printf("  bandwidth      : %.1f GB/s (useful %s)\n",
              rep.bandwidth(useful_bytes) / 1e9,
              format_bytes(useful_bytes).c_str());
  std::printf("  elements/s     : %.2f Gelem/s\n", rep.elements_per_s(n) / 1e9);
  std::printf("  gm traffic     : read %s, write %s, l2 hits %s\n",
              format_bytes(rep.gm_read_bytes).c_str(),
              format_bytes(rep.gm_write_bytes).c_str(),
              format_bytes(rep.l2_hit_bytes).c_str());
  std::printf("  engine busy    : cube %s, vector %s, mte %s\n",
              format_time_s(rep.cube_busy_s).c_str(),
              format_time_s(rep.vec_busy_s).c_str(),
              format_time_s(rep.mte_busy_s).c_str());
}

int cmd_info() {
  const auto cfg = sim::MachineConfig::ascend_910b4();
  std::printf("simulated machine: Ascend 910B4\n");
  std::printf("  AI cores        : %d (x1 cube + x%d vector)\n",
              cfg.num_ai_cores, cfg.vec_per_core);
  std::printf("  clock           : %.2f GHz\n", cfg.clock_hz / 1e9);
  std::printf("  HBM             : %.0f GB/s peak, %.0f%% streaming "
              "efficiency, %.0f ns latency\n",
              cfg.hbm_bandwidth / 1e9, cfg.hbm_efficiency * 100,
              cfg.gm_latency_s * 1e9);
  std::printf("  L2              : %s, %.0f GB/s\n",
              format_bytes(cfg.l2_bytes).c_str(), cfg.l2_bandwidth / 1e9);
  std::printf("  scratchpads     : UB %s, L1 %s, L0A/B %s/%s, L0C %s\n",
              format_bytes(cfg.ub_bytes).c_str(),
              format_bytes(cfg.l1_bytes).c_str(),
              format_bytes(cfg.l0a_bytes).c_str(),
              format_bytes(cfg.l0b_bytes).c_str(),
              format_bytes(cfg.l0c_bytes).c_str());
  std::printf("  cube            : %.0f fp16 MACs/cycle, %.0f int8\n",
              cfg.cube_macs_per_cycle_f16, cfg.cube_macs_per_cycle_i8);
  return 0;
}

int cmd_scan(const Args& a) {
  const std::size_t n = a.num("n", 1 << 20);
  const std::size_t s = a.num("s", 128);
  const int blocks = static_cast<int>(a.num("blocks", 0));
  const std::string algo = a.str("algo", "mcscan");

  acc::Device dev;
  Rng rng(1);
  auto x = dev.upload(rng.uniform_f16(n, -1.0, 1.0));
  sim::Report rep;
  std::uint64_t useful = 0;
  if (algo == "mcscan") {
    auto y = dev.alloc<float>(n);
    rep = kernels::mcscan<half, float>(dev, x.tensor(), y.tensor(), n,
                                       {.s = s, .blocks = blocks});
    useful = n * 6;
  } else if (algo == "scanu" || algo == "scanul1") {
    auto y = dev.alloc<half>(n);
    rep = algo == "scanu"
              ? kernels::scan_u(dev, x.tensor(), y.tensor(), n, s)
              : kernels::scan_ul1(dev, x.tensor(), y.tensor(), n, s);
    useful = n * 4;
  } else if (algo == "vec") {
    auto y = dev.alloc<half>(n);
    rep = kernels::vec_cumsum(dev, x.tensor(), y.tensor(), n);
    useful = n * 4;
  } else {
    std::fprintf(stderr, "unknown scan algo '%s'\n", algo.c_str());
    return 2;
  }
  print_report(("scan/" + algo).c_str(), rep, n, useful);

  if (a.flag("trace")) {
    // Capture the MCScan schedule itself and dump it for chrome://tracing.
    const std::string path = a.str("trace", "trace.json");
    sim::Timeline tl;
    acc::Device dev2;
    auto x2 = dev2.upload(rng.uniform_f16(n, -1.0, 1.0));
    auto y2 = dev2.alloc<float>(n);
    kernels::mcscan<half, float>(
        dev2, x2.tensor(), y2.tensor(), n,
        {.s = s, .blocks = blocks, .timeline = &tl});
    sim::export_chrome_trace_file(tl, path);
    std::printf("  trace          : wrote %s (%zu events; open in "
                "chrome://tracing)\n",
                path.c_str(), tl.events.size());
  }
  return 0;
}

int cmd_sort(const Args& a) {
  const std::size_t n = a.num("n", 1 << 20);
  const std::string algo = a.str("algo", "radix");
  acc::Device dev;
  Rng rng(2);
  auto keys = dev.upload(rng.uniform_f16(n, -100.0, 100.0));
  auto ok = dev.alloc<half>(n);
  auto oi = dev.alloc<std::int32_t>(n);
  sim::Report rep;
  if (algo == "radix") {
    rep = kernels::radix_sort_f16(dev, keys.tensor(), ok.tensor(),
                                  oi.tensor(), n, {});
  } else if (algo == "baseline") {
    rep = kernels::sort_baseline_f16(dev, keys.tensor(), ok.tensor(),
                                     oi.tensor(), n, false);
  } else {
    std::fprintf(stderr, "unknown sort algo '%s'\n", algo.c_str());
    return 2;
  }
  print_report(("sort/" + algo).c_str(), rep, n, n * 12);
  return 0;
}

int cmd_topp(const Args& a) {
  const std::size_t n = a.num("n", 32000);
  const double p = a.real("p", 0.9);
  const double u = a.real("u", 0.25);
  acc::Device dev;
  Rng rng(3);
  auto probs = dev.upload(rng.token_probs_f16(n));
  const auto r = kernels::top_p_sample(
      dev, probs.tensor(), n, p, u,
      {.use_baseline_ops = a.flag("baseline")});
  print_report("top_p", r.report, n, n * 2);
  std::printf("  sampled token  : %d (nucleus %zu tokens)\n", r.token,
              r.nucleus);
  return 0;
}

int cmd_reduce(const Args& a) {
  const std::size_t n = a.num("n", 1 << 20);
  const std::string algo = a.str("algo", "cube");
  acc::Device dev;
  Rng rng(4);
  auto x = dev.upload(rng.uniform_f16(n, 0.0, 1.0));
  const auto r = algo == "cube"
                     ? kernels::reduce_cube(dev, x.tensor(), n, {})
                     : kernels::reduce_vector(dev, x.tensor(), n);
  print_report(("reduce/" + algo).c_str(), r.report, n, n * 2);
  std::printf("  sum            : %g\n", r.value);
  return 0;
}

// Chaos sweep: run seeded fault plans against Session operators with the
// resilient retry/degradation policy and summarise the outcomes. The
// invariant mirrors tests/test_chaos.cpp: every plan either completes with
// results identical to the fault-free run or fails with a typed error.
int cmd_chaos(const Args& a) {
  const std::size_t plans = a.num("plans", 60);
  const std::size_t n = a.num("n", 4096);
  const std::uint64_t seed0 = a.num("seed0", 1);
  const int retries = static_cast<int>(a.num("retries", 3));
  const int exclusions = static_cast<int>(a.num("exclusions", 1));

  auto cfg = sim::MachineConfig::ascend_910b4();
  cfg.num_ai_cores = 4;
  cfg.watchdog_s = 0.01;

  // Integer-valued workloads: every reduction is exact, so even a
  // degraded-core relaunch must match the fault-free run bit for bit.
  Rng rng(9);
  std::vector<half> x(n), keys(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = half(rng.bernoulli(0.5) ? 1.0f : 0.0f);
    keys[i] = half(static_cast<float>((i * 2654435761u >> 7) % 2048) -
                   1024.0f);
  }

  struct Op {
    const char* name;
    std::function<std::vector<float>(ascan::Session&)> run;
  };
  const std::vector<Op> ops = {
      {"cumsum", [&x](ascan::Session& s) { return s.cumsum(x).values; }},
      {"sort",
       [&keys](ascan::Session& s) {
         auto r = s.sort(keys);
         std::vector<float> sig;
         for (auto i : r.indices) sig.push_back(static_cast<float>(i));
         return sig;
       }},
      {"topk",
       [&keys, n](ascan::Session& s) {
         auto r = s.topk(keys, std::min<std::size_t>(64, n));
         std::vector<float> sig;
         for (auto v : r.values) sig.push_back(static_cast<float>(v));
         return sig;
       }},
  };

  Table table({"op", "seed", "outcome", "retries", "excluded", "mte", "ecc1",
               "ecc2", "hangs", "time"});
  std::size_t ran = 0, exact = 0, typed = 0, corrupt = 0;
  for (std::uint64_t seed = seed0; ran < plans; ++seed) {
    for (const auto& op : ops) {
      if (ran >= plans) break;
      ++ran;
      sim::FaultPlan plan;
      plan.seed = seed * 1000003 + ran;
      const double inten = static_cast<double>(seed % 6) / 5.0;
      plan.mte_transient_rate = 0.004 * inten;
      plan.ecc_single_rate = 0.002 * inten;
      plan.ecc_double_rate = 0.0004 * inten;
      plan.hang_rate = 0.0008 * inten;
      plan.throttle_rate = 0.25 * inten;

      ascan::Session ref_s(cfg);
      const auto ref = op.run(ref_s);

      ascan::Session s(cfg);
      s.set_fault_plan(plan);
      s.set_retry_policy({.max_attempts = retries,
                          .backoff_s = 20e-6,
                          .max_core_exclusions = exclusions});
      try {
        const auto got = op.run(s);
        const bool ok = got == ref;
        if (ok) ++exact; else ++corrupt;
        const auto& st = s.last_retry_stats();
        const auto& rep = s.total();  // one call per session
        table.add_row({op.name, static_cast<std::int64_t>(seed),
                       ok ? "exact" : "CORRUPT",
                       static_cast<std::int64_t>(st.retries),
                       static_cast<std::int64_t>(st.excluded_cores),
                       static_cast<std::int64_t>(rep.mte_faults),
                       static_cast<std::int64_t>(rep.ecc_single),
                       static_cast<std::int64_t>(rep.ecc_double),
                       static_cast<std::int64_t>(rep.hangs),
                       format_time_s(rep.time_s)});
      } catch (const sim::FaultError& e) {
        ++typed;
        const auto& rep = e.attempt_report();
        table.add_row({op.name, static_cast<std::int64_t>(seed),
                       std::string("error: ") + sim::fault_kind_name(e.kind()),
                       static_cast<std::int64_t>(s.last_retry_stats().retries),
                       static_cast<std::int64_t>(
                           s.last_retry_stats().excluded_cores),
                       static_cast<std::int64_t>(rep.mte_faults),
                       static_cast<std::int64_t>(rep.ecc_single),
                       static_cast<std::int64_t>(rep.ecc_double),
                       static_cast<std::int64_t>(rep.hangs),
                       format_time_s(rep.time_s)});
      }
    }
  }
  table.print(std::cout);
  std::printf("\nchaos: %zu plans, %zu bit-exact, %zu typed errors, "
              "%zu corruptions\n",
              ran, exact, typed, corrupt);
  if (corrupt > 0) {
    std::fprintf(stderr, "chaos: SILENT CORRUPTION DETECTED\n");
    return 1;
  }
  return 0;
}

// Serving demo: a few concurrent clients fire a mixed operator workload at
// a serve::Engine; per-kind outcomes and the metrics snapshot (the JSON the
// load generators consume) are printed when the queue drains.
int cmd_serve_demo(const Args& a) {
  const std::size_t requests = a.num("requests", 64);
  const int clients = static_cast<int>(a.num("clients", 4));
  const std::size_t batch = a.num("batch", 16);
  const double wait_us = a.real("wait-us", 500.0);

  using namespace ascan::serve;
  // SLO stamp applied to every request: --deadline-us 0 (default) keeps
  // the demo best-effort; a positive value exercises the EDF lanes,
  // deadline-miss accounting and (for bulk launches) tile-boundary
  // preemption visible in the printed metrics' "slo" section.
  const double deadline_us = a.real("deadline-us", 0.0);
  const std::string tier_name = a.str("tier", "silver");
  const SloTier tier = tier_name == "gold"     ? SloTier::Gold
                       : tier_name == "bronze" ? SloTier::Bronze
                                               : SloTier::Silver;
  const auto stamp = [&](Request r) {
    return std::move(r.with_slo(tier, deadline_us * 1e-6));
  };
  const std::size_t max_queue = a.num("queue", 256);
  Engine engine({.policy = {.max_batch = batch,
                            .max_wait_s = wait_us * 1e-6},
                 .max_queue = max_queue,
                 // Keep the latency lane open but never swallow a small
                 // --queue bound whole.
                 .interactive_reserve = std::min<std::size_t>(
                     16, max_queue > 1 ? max_queue / 4 : 0)});
  std::printf("serve-demo: %zu requests, %d clients, max_batch=%zu, "
              "max_wait=%.0f us\n\n",
              requests, clients, batch, wait_us);

  std::vector<std::future<Response>> futs(requests);
  std::vector<std::thread> threads;
  std::atomic<std::size_t> next{0};
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < requests;
           i = next.fetch_add(1)) {
        Rng rng(42 + i);
        switch (i % 4) {
          case 0:
            futs[i] = engine.submit(stamp(Request::cumsum(
                rng.uniform_f16(256 + 128 * (i % 3), -1.0, 1.0))));
            break;
          case 1: {
            auto x = rng.uniform_f16(256, -1.0, 1.0);
            auto f = rng.mask_i8(x.size(), 0.05);
            f[0] = 1;
            futs[i] = engine.submit(
                stamp(Request::segmented_cumsum(std::move(x), std::move(f))));
            break;
          }
          case 2:
            futs[i] = engine.submit(
                stamp(Request::sort(rng.uniform_f16(256, -100.0, 100.0))));
            break;
          default:
            futs[i] = engine.submit(stamp(Request::top_p(
                rng.token_probs_f16(1024), 0.9, rng.next_double())));
            break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  Table table({"kind", "status", "batch", "queue us", "exec us", "total us"});
  for (std::size_t i = 0; i < std::min<std::size_t>(requests, 12); ++i) {
    const auto r = futs[i].get();
    table.add_row({op_kind_name(r.kind), status_name(r.status),
                   static_cast<std::int64_t>(r.batch_size),
                   r.timing.queue_s * 1e6, r.timing.execute_s * 1e6,
                   r.timing.total_s * 1e6});
  }
  engine.shutdown(ShutdownMode::Drain);
  std::printf("first %zu requests:\n", std::min<std::size_t>(requests, 12));
  table.print(std::cout);
  std::printf("\nmetrics:\n%s\n", engine.metrics_json().c_str());
  return 0;
}

// Cluster demo: the same mixed workload fired at a multi-device
// serve::Cluster, with a hot-key bulk flood mixed in so affinity placement,
// least-loaded spill and cross-device work stealing all leave visible
// tracks in the merged metrics. The per-request table shows which device
// served each request.
int cmd_cluster_demo(const Args& a) {
  const std::size_t requests = a.num("requests", 96);
  const int clients = static_cast<int>(a.num("clients", 4));
  const int devices = static_cast<int>(a.num("devices", 4));
  const std::size_t batch = a.num("batch", 8);
  const double wait_us = a.real("wait-us", 200.0);
  const std::size_t max_queue = a.num("queue", 512);

  using namespace ascan::serve;
  Cluster cluster({.policy = {.max_batch = batch,
                              .max_wait_s = wait_us * 1e-6},
                   .num_devices = devices,
                   .max_queue = max_queue,
                   .interactive_reserve = std::min<std::size_t>(
                       16, max_queue > 1 ? max_queue / 4 : 0),
                   .work_stealing = !a.flag("no-steal"),
                   .steal_min_backlog = batch});
  std::printf("cluster-demo: %zu requests, %d clients, %d devices, "
              "max_batch=%zu, max_wait=%.0f us, stealing %s\n\n",
              requests, clients, devices, batch, wait_us,
              a.flag("no-steal") ? "off" : "on");

  std::vector<std::future<Response>> futs(requests);
  std::vector<std::thread> threads;
  std::atomic<std::size_t> next{0};
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < requests;
           i = next.fetch_add(1)) {
        Rng rng(42 + i);
        // Even indices: a hot-key bulk flood (one GroupKey, so the whole
        // backlog lands on one affinity device and stealing has something
        // to rebalance). Odd indices: mixed interactive traffic.
        if (i % 2 == 0) {
          std::vector<half> hot(512);
          for (auto& v : hot) v = half(rng.bernoulli(0.5) ? 1.0f : 0.0f);
          futs[i] = cluster.submit(Request::cumsum(
              std::move(hot), 128, false, Priority::Bulk));
          continue;
        }
        switch (i % 6) {
          case 1: {
            auto x = rng.uniform_f16(256, -1.0, 1.0);
            auto f = rng.mask_i8(x.size(), 0.05);
            f[0] = 1;
            futs[i] = cluster.submit(
                Request::segmented_cumsum(std::move(x), std::move(f)));
            break;
          }
          case 3:
            futs[i] = cluster.submit(Request::top_p(
                rng.token_probs_f16(1024), 0.9, rng.next_double()));
            break;
          default:  // 5
            futs[i] = cluster.submit(
                Request::sort(rng.uniform_f16(256, -100.0, 100.0)));
            break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  Table table({"kind", "prio", "status", "device", "batch", "total us"});
  for (std::size_t i = 0; i < std::min<std::size_t>(requests, 12); ++i) {
    const auto r = futs[i].get();
    table.add_row({op_kind_name(r.kind), i % 2 == 0 ? "bulk" : "interactive",
                   status_name(r.status), static_cast<std::int64_t>(r.device),
                   static_cast<std::int64_t>(r.batch_size),
                   r.timing.total_s * 1e6});
  }
  cluster.shutdown(ShutdownMode::Drain);
  std::printf("first %zu requests:\n", std::min<std::size_t>(requests, 12));
  table.print(std::cout);
  const auto m = cluster.metrics();
  std::printf("\nrouting: %llu affinity, %llu spill; stealing: %llu batches "
              "(%llu requests)\n",
              static_cast<unsigned long long>(m.routed_affinity),
              static_cast<unsigned long long>(m.routed_spill),
              static_cast<unsigned long long>(m.steals),
              static_cast<unsigned long long>(m.stolen_requests));
  std::printf("\nmetrics:\n%s\n", cluster.metrics_json().c_str());
  return 0;
}

// Health demo: one device of the cluster dies mid-run under a seeded
// persistent fault. A monitor thread tails the per-device health states and
// prints a row every time the vector changes — the state machine walking
// Healthy -> Degraded -> Quarantined -> Probing (canary) and, because the
// fault is persistent, back to Quarantined — while clients keep submitting
// and every request still completes via tile-checkpoint failover.
int cmd_health_demo(const Args& a) {
  const std::size_t requests = a.num("requests", 160);
  const int clients = static_cast<int>(a.num("clients", 4));
  const int devices = static_cast<int>(a.num("devices", 4));
  const std::size_t batch = a.num("batch", 4);
  const double hold_us = a.real("hold-us", 1500.0);
  const std::size_t dead_launch = a.num("dead-launch", 4);

  using namespace ascan::serve;
  // The workload: 2048 elements at tile 16 — eight stepwise launches per
  // batch, so a faulted batch resumes from a mid-scan tile checkpoint. Its
  // affinity device is the victim, guaranteeing it a share of the load.
  constexpr std::size_t kN = 2048, kTile = 16;
  const int bad = static_cast<int>(
      group_key_hash(group_key(Request::cumsum(std::vector<half>(kN), kTile,
                                               false, Priority::Bulk))) %
      static_cast<std::size_t>(devices));
  std::vector<sim::FaultPlan> plans(static_cast<std::size_t>(devices));
  plans[static_cast<std::size_t>(bad)] =
      sim::FaultPlan::dead_from_launch(dead_launch);
  HealthPolicy hp;
  hp.window = 8;
  hp.min_samples = 1;  // fail over on the first fault
  hp.quarantine_hold_s = hold_us * 1e-6;
  hp.canary_batches = 1;
  Cluster cluster({.policy = {.max_batch = batch, .max_wait_s = 100e-6},
                   .num_devices = devices,
                   .max_queue = 1024,
                   .retry = {.max_attempts = 2, .backoff_s = 1e-6},
                   .device_fault_plans = plans,
                   .work_stealing = false,
                   .spill_margin = 1u << 20,
                   .health = hp});
  std::printf("health-demo: %zu requests, %d clients, %d devices; device %d "
              "dies from launch %zu on (persistent fault), quarantine hold "
              "%.0f us\n\n",
              requests, clients, devices, bad, dead_launch, hold_us);

  std::atomic<bool> done{false};
  std::thread monitor([&] {
    const auto t0 = std::chrono::steady_clock::now();
    auto last = cluster.health_states();
    const auto print_row = [&](const std::vector<HealthState>& st) {
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      std::string line;
      for (std::size_t d = 0; d < st.size(); ++d) {
        line += "  d" + std::to_string(d) + "=" + health_state_name(st[d]);
      }
      const auto m = cluster.metrics();
      std::printf("[%8.2f ms]%s  | failovers %llu, tile-resumes %llu, "
                  "canaries %llu, transitions %llu\n",
                  ms, line.c_str(),
                  static_cast<unsigned long long>(m.failovers),
                  static_cast<unsigned long long>(m.tiles_resumed),
                  static_cast<unsigned long long>(m.canary_probes),
                  static_cast<unsigned long long>(m.health_transitions));
      std::fflush(stdout);
    };
    print_row(last);
    while (!done.load()) {
      auto cur = cluster.health_states();
      if (cur != last) {
        print_row(cur);
        last = cur;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    const auto cur = cluster.health_states();
    if (cur != last) print_row(cur);
  });

  std::atomic<std::size_t> next{0}, ok{0}, resumed{0}, other{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (std::size_t i = next.fetch_add(1); i < requests;
           i = next.fetch_add(1)) {
        Rng rng(42 + i);
        std::vector<half> x(kN);
        for (auto& v : x) v = half(rng.bernoulli(0.5) ? 1.0f : 0.0f);
        const auto r = cluster
                           .submit(Request::cumsum(std::move(x), kTile, false,
                                                   Priority::Bulk))
                           .get();
        if (r.ok()) ok++;
        else other++;
        if (r.resumed_from >= 0) resumed++;
      }
    });
  }
  for (auto& t : threads) t.join();
  done.store(true);
  monitor.join();
  cluster.shutdown(ShutdownMode::Drain);

  const auto m = cluster.metrics();
  std::printf("\n%zu/%zu requests ok (%zu finished on another device after "
              "their first device faulted, %zu not ok)\n",
              ok.load(), requests, resumed.load(), other.load());
  std::printf("\nmetrics:\n%s\n", cluster.metrics_json().c_str());
  return m.failed == 0 && other.load() == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  try {
    if (a.command == "info") return cmd_info();
    if (a.command == "scan") return cmd_scan(a);
    if (a.command == "sort") return cmd_sort(a);
    if (a.command == "topp") return cmd_topp(a);
    if (a.command == "reduce") return cmd_reduce(a);
    if (a.command == "chaos") return cmd_chaos(a);
    if (a.command == "serve-demo") return cmd_serve_demo(a);
    if (a.command == "cluster-demo") return cmd_cluster_demo(a);
    if (a.command == "health-demo") return cmd_health_demo(a);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr,
               "usage: ascan_cli info|scan|sort|topp|reduce|chaos|serve-demo"
               "|cluster-demo|health-demo "
               "[--n N] [--algo A] [--s S] [--blocks B] [--p P] [--u U] "
               "[--baseline] [--trace FILE] [--plans P] [--seed0 S] "
               "[--retries R] [--exclusions E] [--requests N] [--clients C] "
               "[--batch B] [--wait-us W] [--queue Q] [--devices D] "
               "[--no-steal] [--hold-us H] [--dead-launch L]\n");
  return 2;
}
