#!/usr/bin/env bash
# Runs the multi-device cluster bench and writes the JSON report to
# BENCH_cluster.json at the repository root.
#
# Usage:
#   tools/run_cluster_bench.sh [build-dir] [extra bench_cluster flags...]
#
# The bench measures 4-device capacity scaling against a single-device
# engine (in simulated device time — see the "note" field in the JSON), the
# hot-key-burst tail-latency cut from cross-device work stealing, and the
# chaos scenario (a persistent fault kills one device mid-run: availability,
# failover latency, and p99 before/during/after quarantine). The saturating
# batched wall-clock rate from BENCH_serve.json, when present, is passed
# along as --ref-rps for context.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true

bench_bin="$build_dir/bench/bench_cluster"
if [[ ! -x "$bench_bin" ]]; then
  echo "error: $bench_bin not found or not executable." >&2
  echo "Build it first:  cmake -B build -S . && cmake --build build --target bench_cluster -j" >&2
  exit 1
fi

ref_args=()
serve_json="$repo_root/BENCH_serve.json"
if [[ -f "$serve_json" ]] && command -v python3 >/dev/null 2>&1; then
  ref_rps="$(python3 -c '
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
print(data.get("headline", {}).get("batched_rps", 0))
' "$serve_json")"
  if [[ "$ref_rps" != "0" ]]; then
    ref_args=(--ref-rps "$ref_rps")
  fi
fi

out_json="$repo_root/BENCH_cluster.json"
"$bench_bin" --json "$out_json" --chaos "${ref_args[@]}" "$@"

echo
echo "Wrote $out_json"

if command -v python3 >/dev/null 2>&1; then
  python3 - "$out_json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    data = json.load(f)

t = data.get("throughput", {})
if t:
    print(f"capacity: cluster {t['cluster4_stealing']['sim_capacity_rps']:.0f} req/s "
          f"vs single device {t['single_device']['sim_capacity_rps']:.0f} req/s "
          f"({t['capacity_ratio']:.2f}x, simulated device time)")
b = data.get("hot_key_burst", {})
if b:
    print(f"tail: work stealing cuts hot-key bulk p99 "
          f"{b['affinity_only']['bulk_p99_us']:.0f} us -> "
          f"{b['work_stealing']['bulk_p99_us']:.0f} us "
          f"({b['p99_improvement']:.2f}x)")
c = data.get("chaos", {})
if c:
    ph = c["phases"]
    print(f"chaos: device {c['bad_device']} died mid-run, availability "
          f"{c['availability']:.4f}, {c['failovers']} failovers, "
          f"{c['tiles_resumed']} tile resumes; p99 us "
          f"before {ph['before_quarantine']['p99_us']:.0f} / "
          f"during {ph['during_failover']['p99_us']:.0f} / "
          f"after {ph['after_quarantine']['p99_us']:.0f}")
EOF
fi
