#!/usr/bin/env bash
# Runs the closed-loop serving load generator and writes the JSON report to
# BENCH_serve.json at the repository root.
#
# Usage:
#   tools/run_serve_bench.sh [build-dir] [extra bench_serve flags...]
#
# The sweep serves the same cumsum workload under several batching policies
# (including no batching) at increasing offered load; the JSON's "headline"
# object carries the saturating-load batched-vs-unbatched throughput ratio.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true

bench_bin="$build_dir/bench/bench_serve"
if [[ ! -x "$bench_bin" ]]; then
  echo "error: $bench_bin not found or not executable." >&2
  echo "Build it first:  cmake -B build -S . && cmake --build build --target bench_serve -j" >&2
  exit 1
fi

out_json="$repo_root/BENCH_serve.json"
"$bench_bin" --json "$out_json" "$@"

echo
echo "Wrote $out_json"

if command -v python3 >/dev/null 2>&1; then
  python3 - "$out_json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    data = json.load(f)

h = data.get("headline", {})
if h:
    print(f"serving throughput at saturating load: "
          f"batched {h['batched_rps']:.0f} req/s vs "
          f"no-batching {h['no_batching_rps']:.0f} req/s "
          f"({h['ratio']:.1f}x)")

modes = {m["mode"]: m for m in data.get("streaming", {}).get("modes", [])}
cont, bound = modes.get("continuous"), modes.get("boundary_only")
if cont:
    print(f"streaming: first chunk after {cont['time_to_first_chunk_us']:.0f} us "
          f"vs {cont['full_latency_us']:.0f} us full response; "
          f"{cont['continuation_admits']} continuation admits")
if cont and bound:
    print(f"continuous batching: interactive queue wait "
          f"{bound['interactive_queue_us']:.0f} us -> "
          f"{cont['interactive_queue_us']:.0f} us vs boundary-only")

slo = data.get("slo", {})
smodes = {m["mode"]: m for m in slo.get("modes", [])}
on, off = smodes.get("preemption"), smodes.get("no_preemption")
if on and off:
    print(f"slo (deadline {slo['deadline_us']:.0f} us): preemption cuts "
          f"interactive p99 {off['interactive_p99_us']:.0f} us -> "
          f"{on['interactive_p99_us']:.0f} us, miss rate "
          f"{off['miss_rate']*100:.1f}% -> {on['miss_rate']*100:.1f}% "
          f"({on['preemptions']} parks)")
EOF
fi
