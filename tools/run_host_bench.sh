#!/usr/bin/env bash
# Runs the host-side simulator microbenchmarks (google-benchmark) and writes
# the JSON report to BENCH_sim_host.json at the repository root.
#
# Usage:
#   tools/run_host_bench.sh [build-dir] [extra google-benchmark flags...]
#
# The end-to-end Session benchmarks embed a spawn-vs-pool determinism check
# (`cross_exec_ok` counter): the JSON therefore carries, from the same run,
# both the launches/sec comparison and the evidence that the two executors
# produced bit-identical simulated times and values.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true

bench_bin="$build_dir/bench/bench_sim_host"
if [[ ! -x "$bench_bin" ]]; then
  echo "error: $bench_bin not found or not executable." >&2
  echo "Build it first:  cmake -B build -S . && cmake --build build --target bench_sim_host -j" >&2
  exit 1
fi

out_json="$repo_root/BENCH_sim_host.json"
"$bench_bin" \
  --benchmark_format=json \
  --benchmark_out="$out_json" \
  --benchmark_out_format=json \
  "$@"

echo
echo "Wrote $out_json"

# Summarise the headline pool-vs-spawn ratio if python3 is available.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$out_json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    data = json.load(f)

rates = {}
for b in data.get("benchmarks", []):
    name = b.get("name", "")
    if "launches_per_s" in b:
        rates[name] = b["launches_per_s"]

def find(sub):
    for name, v in rates.items():
        if sub in name:
            return v
    return None

spawn = find("BM_RepeatedLaunch/spawn")
pool = find("BM_RepeatedLaunch/pool/")
if spawn and pool:
    print(f"repeated-launch throughput: spawn {spawn:.0f}/s, "
          f"pool {pool:.0f}/s  ({pool / spawn:.1f}x)")
EOF
fi
