// LLM token sampling: the top-p (nucleus) pipeline of §5 and Fig. 13.
//
// Generates a Zipf-shaped next-token distribution (what an LLM softmax
// looks like), then draws tokens with the cube-assisted pipeline
// (radix sort + MCScan + inverse-transform draw = 17 scans) and with the
// baseline (torch.sort + torch.cumsum style) pipeline.
#include <iostream>
#include <map>

#include "common/rng.hpp"
#include "core/ascan.hpp"

int main() {
  ascan::Session session;
  ascend::Rng rng(7);

  const std::size_t vocab = 32000;  // Llama-style vocabulary
  const auto probs = rng.token_probs_f16(vocab);

  std::cout << "top-p sampling over a " << vocab << "-token distribution\n\n";

  // Draw several tokens; show the nucleus size p controls.
  for (double p : {0.5, 0.9, 0.99}) {
    const auto s = session.top_p_sample(probs, p, rng.next_double());
    std::cout << "p=" << p << ": sampled token " << s.index << " (nucleus "
              << s.nucleus << " tokens), simulated time "
              << s.report.time_s * 1e3 << " ms\n";
  }

  // Distribution sanity: with u swept uniformly, frequent tokens dominate.
  std::map<std::int32_t, int> counts;
  for (int draw = 0; draw < 32; ++draw) {
    counts[session.top_p_sample(probs, 0.9, rng.next_double()).index]++;
  }
  std::cout << "\n32 draws hit " << counts.size() << " distinct tokens\n";

  // Pipeline comparison (Fig. 13): ours vs the PyTorch-baseline ops. At
  // small vocabularies the baseline can win (the 17-scan pipeline pays ~50
  // kernel launches); the baseline's poor scaling shows at larger lengths.
  std::cout << "\n   vocab    cube-assisted   baseline-ops\n";
  for (std::size_t v : {32768u, 131072u, 524288u, 1048576u}) {
    const auto dist = rng.token_probs_f16(v);
    const auto fast = session.top_p_sample(dist, 0.9, 0.25);
    const auto slow = session.top_p_sample(dist, 0.9, 0.25,
                                           /*baseline_ops=*/true);
    std::printf("%8zu   %10.3f ms   %10.3f ms  (%.2fx)\n", v,
                fast.report.time_s * 1e3, slow.report.time_s * 1e3,
                slow.report.time_s / fast.report.time_s);
  }

  // Weighted sampling directly (torch.multinomial replacement): supports
  // arbitrary support sizes, unlike the 2^24-capped baseline (§5).
  const auto m = session.multinomial(probs, 0.6180339887);
  std::cout << "\nmultinomial draw: token " << m.index << "\n";
  return 0;
}
