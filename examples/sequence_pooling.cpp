// Variable-length sequence pooling with the segmented scan extension.
//
// A batch of packed variable-length sequences (the ragged layout used for
// attention masking and sequence pooling in LLM serving) is prefix-summed
// per sequence in one device pass: the segment flags mark sequence starts,
// and the segmented scan restarts the running sum at each of them. The
// last element of each segment is then its pooled sum — gathered on the
// host for the demo.
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "core/ascan.hpp"

int main() {
  ascan::Session session;
  ascend::Rng rng(11);

  // Build a packed batch: 64 sequences with ragged lengths 100..5000.
  std::vector<std::size_t> lengths;
  std::size_t total = 0;
  for (int i = 0; i < 64; ++i) {
    const std::size_t len = 100 + rng.next_below(4900);
    lengths.push_back(len);
    total += len;
  }
  std::vector<ascan::half> values(total);
  std::vector<std::int8_t> starts(total, 0);
  {
    std::size_t pos = 0;
    for (const std::size_t len : lengths) {
      starts[pos] = 1;
      for (std::size_t j = 0; j < len; ++j) {
        values[pos + j] = ascan::half(float(rng.next_below(3)));
      }
      pos += len;
    }
  }

  const auto scanned = session.segmented_cumsum(values, starts);
  std::printf("segmented scan over %zu packed elements (64 sequences): "
              "%.1f us simulated\n",
              total, scanned.report.time_s * 1e6);

  // Pooled sums = the last scanned element of each segment.
  std::size_t pos = 0;
  double checked = 0.0;
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    pos += lengths[i];
    const float pooled = scanned.values[pos - 1];
    // Verify against a host-side sum.
    double want = 0.0;
    for (std::size_t j = pos - lengths[i]; j < pos; ++j) {
      want += float(values[j]);
    }
    if (pooled != float(want)) {
      std::fprintf(stderr, "sequence %zu pooled mismatch: %g vs %g\n", i,
                   pooled, want);
      return 1;
    }
    checked += want;
  }
  std::printf("all 64 pooled sums verified (grand total %.0f)\n", checked);

  // Compare against the flat (single-segment) scan for context.
  const auto flat = session.cumsum(values);
  std::printf("flat MCScan of the same data: %.1f us — the segmented pass "
              "costs %.2fx\n",
              flat.report.time_s * 1e6,
              scanned.report.time_s / flat.report.time_s);
  return 0;
}
