// Sorting and selection: the radix sort of §6.3 and the top-k of §5.
//
// Sweeps input length to show the radix/baseline crossover (Fig. 11) and
// runs top-k, reproducing the paper's honest finding that quickselect does
// not beat the sort-based baseline for small k.
#include <iostream>

#include "common/rng.hpp"
#include "core/ascan.hpp"

int main() {
  ascan::Session session;
  ascend::Rng rng(17);

  std::cout << "radix sort vs baseline sort (fp16 keys, times in ms)\n";
  std::cout << "      n      radix   baseline   speedup\n";
  for (std::size_t n : {1u << 16, 1u << 18, 1u << 20, 1u << 22}) {
    auto keys = rng.uniform_f16(n, -100.0, 100.0);
    const auto r = session.sort(keys, false, ascan::SortAlgo::Radix);
    const auto b = session.sort(keys, false, ascan::SortAlgo::Baseline);
    // Verify agreement while we are at it.
    for (std::size_t i = 0; i < n; ++i) {
      if (r.values[i].bits() != b.values[i].bits() ||
          r.indices[i] != b.indices[i]) {
        std::cerr << "sort mismatch at " << i << "\n";
        return 1;
      }
    }
    std::printf("%8zu   %7.3f   %7.3f    %5.2fx\n", n, r.report.time_s * 1e3,
                b.report.time_s * 1e3, b.report.time_s / r.report.time_s);
  }

  std::cout << "\ntop-k (n = 1M): quickselect-on-SplitInd vs sort baseline\n";
  const std::size_t n = 1 << 20;
  auto x = rng.uniform_f16(n, 0.0, 1.0);
  for (std::size_t k : {std::size_t{64}, std::size_t{4096},
                        std::size_t{65536}}) {
    const auto ours = session.topk(x, k);
    const auto base = session.topk(x, k, /*baseline=*/true);
    std::printf("  k=%6zu: ours %7.3f ms, baseline %7.3f ms (%s)\n", k,
                ours.report.time_s * 1e3, base.report.time_s * 1e3,
                ours.report.time_s < base.report.time_s
                    ? "ours wins"
                    : "baseline wins — matches the paper for small k");
    if (ours.values[0].bits() != base.values[0].bits()) {
      std::cerr << "topk mismatch\n";
      return 1;
    }
  }
  return 0;
}
