// Tensor masking: split / compress (masked_select) on a synthetic
// attention-pruning workload (§5, Fig. 10).
//
// Keeps the attention scores above a threshold: builds an int8 mask on
// device semantics, compacts with the scan-based Compress kernel, and
// compares against the scalar masked_select baseline.
#include <iostream>

#include "common/rng.hpp"
#include "core/ascan.hpp"

int main() {
  ascan::Session session;
  ascend::Rng rng(3);

  const std::size_t n = 1 << 20;  // one large attention row block
  std::vector<ascan::half> scores(n);
  std::vector<std::int8_t> keep(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float v = float(rng.uniform(-1.0, 1.0));
    scores[i] = ascan::half(v);
    keep[i] = v > 0.25f ? 1 : 0;  // prune ~62% of the entries
  }

  // Scan-based compress (MCScan on the int8 mask + GatherMask writes).
  const auto fast = session.masked_select(scores, keep);
  std::cout << "compress kept " << fast.values.size() << " / " << n
            << " elements in " << fast.report.time_s * 1e6 << " us ("
            << fast.report.bandwidth(n * 3 + fast.values.size() * 2) / 1e9
            << " GB/s)\n";

  // The unoptimised scalar baseline (uses neither vector nor cube units).
  const auto slow = session.masked_select(scores, keep, 128,
                                          /*baseline=*/true);
  std::cout << "masked_select baseline: " << slow.report.time_s * 1e6
            << " us -> compress speedup "
            << slow.report.time_s / fast.report.time_s << "x\n";

  // Stable split keeps both partitions with original indices — handy for
  // scatter-back after computing on the kept set.
  const auto sp = session.split(scores, keep);
  std::cout << "\nsplit: " << sp.num_true << " kept first, "
            << n - sp.num_true << " pruned after; e.g. values[0]="
            << float(sp.values[0]) << " came from index " << sp.indices[0]
            << "\n";

  // Round-trip check: scatter the split back and verify.
  std::vector<ascan::half> restored(n);
  for (std::size_t i = 0; i < n; ++i) {
    restored[static_cast<std::size_t>(sp.indices[i])] = sp.values[i];
  }
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (restored[i].bits() != scores[i].bits()) ++mismatches;
  }
  std::cout << "scatter-back mismatches: " << mismatches << " (expect 0)\n";
  return mismatches == 0 ? 0 : 1;
}
