// Quickstart: prefix sums on the simulated Ascend 910B4.
//
// Build & run:  ./build/examples/quickstart
//
// Shows the three scan algorithms of the paper on the same input and the
// simulated execution profile each produces.
#include <iostream>

#include "common/rng.hpp"
#include "core/ascan.hpp"

int main() {
  ascan::Session session;  // a simulated Ascend 910B4 (20 AI cores)

  // A small array first: scan and print.
  std::vector<ascan::half> small;
  for (int i = 1; i <= 8; ++i) small.push_back(ascan::half(float(i)));
  auto r = session.cumsum(small);
  std::cout << "cumsum([1..8])      = ";
  for (float v : r.values) std::cout << v << ' ';
  std::cout << "\n\n";

  // A larger workload: compare the paper's algorithms.
  const std::size_t n = 1 << 20;
  ascend::Rng rng(42);
  std::vector<ascan::half> x(n);
  for (auto& v : x) v = ascan::half(float(rng.uniform(-1.0, 1.0)));

  const auto mc = session.cumsum(x);  // MCScan: all 20 cube + 40 vector cores
  const auto su = session.cumsum_f16(x, {.algo = ascan::ScanAlgo::ScanU});
  const auto ul = session.cumsum_f16(x, {.algo = ascan::ScanAlgo::ScanUL1});
  const auto vb =
      session.cumsum_f16(x, {.algo = ascan::ScanAlgo::VectorBaseline});

  auto line = [&](const char* name, const ascan::Report& rep) {
    std::cout << name << ": time=" << rep.time_s * 1e6 << " us,  "
              << rep.elements_per_s(n) / 1e9 << " Gelem/s\n";
  };
  std::cout << "scan of " << n << " fp16 elements on the 910B4 model:\n";
  line("  vector-only CumSum (baseline)", vb.report);
  line("  ScanU   (Algorithm 1, 1 core)", su.report);
  line("  ScanUL1 (Algorithm 2, 1 core)", ul.report);
  line("  MCScan  (Algorithm 3, 20 cores)", mc.report);

  std::cout << "\nMCScan speedup over ScanU: "
            << su.report.time_s / mc.report.time_s << "x (paper: 15.2x)\n";
  std::cout << "\nsession total: " << session.total() << "\n";
  return 0;
}
